package fuzz

import "testing"

// TestSchedEquivalenceSmoke runs a short seq-vs-par scheduler batch on
// both profiles across hart counts and quanta and requires bit-exact
// end-state agreement. The full-size run is scripts/verify.sh's tier-2
// gate.
func TestSchedEquivalenceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduler-equivalence smoke is not short")
	}
	st, err := RunSchedEquivalence([]string{"visionfive2", "p550"}, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cases == 0 || st.Steps == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
	for _, m := range st.Mismatches {
		t.Errorf("scheduler divergence: %s", m)
	}
	t.Logf("sched equivalence: %d cases, %d steps, %d mismatches",
		st.Cases, st.Steps, len(st.Mismatches))
}
