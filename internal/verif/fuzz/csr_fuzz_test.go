package fuzz

// Native Go fuzz target for the CSR access path: one fuzzer-chosen CSR
// instruction (drawn from the generator's own CSR surface, so the access
// respects the documented lockstep constraints) runs as a complete
// single-instruction lockstep case — native hart, monitor-virtualized
// hart, and reference model must agree on the result, including the
// illegal-instruction and privilege-trap outcomes.

import (
	"math/rand"
	"testing"

	"govfm/internal/asm"
	"govfm/internal/refmodel"
	"govfm/internal/rv"
)

// csrForms maps each generator form bit to its SYSTEM funct3 and whether
// the operand is a register (rs1) or an immediate (zimm) — mirroring what
// asm.Generate emits for that form.
var csrForms = []struct {
	form asm.CSRForm
	f3   uint32
	imm  bool
}{
	{asm.FormCsrrw, rv.F3Csrrw, false},
	{asm.FormCsrrs, rv.F3Csrrs, false},
	{asm.FormCsrrc, rv.F3Csrrc, false},
	{asm.FormCsrrwi, rv.F3Csrrwi, true},
	{asm.FormCsrrsi, rv.F3Csrrsi, true},
	{asm.FormCsrrci, rv.F3Csrrci, true},
	{asm.FormRead, rv.F3Csrrs, false}, // csrrs rd, csr, x0
}

// buildCSRCase assembles a single-instruction test case from raw fuzz
// selectors. The CSR and access form always come from the generator's
// spec list, so the case stays inside the engine's symmetric envelope.
func buildCSRCase(e *Engine, csrSel, formSel, rd, rs1, privSel uint8, val uint64) *TestCase {
	spec := e.GenCfg.CSRs[int(csrSel)%len(e.GenCfg.CSRs)]
	var allowed []int
	for i, fm := range csrForms {
		if spec.Forms&fm.form != 0 {
			allowed = append(allowed, i)
		}
	}
	fm := csrForms[allowed[int(formSel)%len(allowed)]]

	rdN := uint32(rd) & 31
	rs1N := uint32(rs1) & 31
	if fm.form == asm.FormRead {
		rs1N = 0
	}
	word := uint32(spec.CSR)<<20 | rs1N<<15 | fm.f3<<12 | rdN<<7 | rv.OpSystem

	s := refmodel.NewState()
	for i := 1; i < 32; i++ {
		s.Regs[i] = val ^ uint64(i)*0x9E3779B97F4A7C15
	}
	if !fm.imm {
		s.Regs[rs1N] = val
	}
	s.Priv = []uint8{refmodel.M, refmodel.S, refmodel.U}[int(privSel)%3]
	s.PC = ProgBase
	tc := &TestCase{Profile: e.Profile, Prog: []uint32{word}, State: s}
	e.canonicalize(tc)
	return tc
}

func checkCSRAccess(t *testing.T, csrSel, formSel, rd, rs1, privSel uint8, val uint64) {
	t.Helper()
	e, err := cachedEngine("visionfive2")
	if err != nil {
		t.Fatal(err)
	}
	tc := buildCSRCase(e, csrSel, formSel, rd, rs1, privSel, val)
	if f, _ := e.Run(tc); f != nil {
		t.Fatalf("CSR access diverges (csr=%#x word=%#08x priv=%d):\n%s",
			tc.Prog[0]>>20, tc.Prog[0], tc.State.Priv, f)
	}
}

func FuzzCSRAccess(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(5), uint8(6), uint8(0), uint64(0))          // csrrw on mstatus, M-mode
	f.Add(uint8(0), uint8(1), uint8(7), uint8(8), uint8(1), ^uint64(0))         // csrrs all-ones from S-mode
	f.Add(uint8(3), uint8(0), uint8(1), uint8(2), uint8(0), uint64(0x222))      // mideleg set-form
	f.Add(uint8(20), uint8(3), uint8(10), uint8(31), uint8(2), uint64(1)<<63)   // U-mode access
	f.Add(uint8(36), uint8(0), uint8(9), uint8(0), uint8(0), uint64(0xFFFFFFF)) // pmp surface
	f.Add(uint8(255), uint8(255), uint8(0), uint8(0), uint8(255), uint64(0x5A)) // selector wraparound, rd=x0
	f.Fuzz(checkCSRAccess)
}

// TestCSRAccessMatchesModel sweeps every generator CSR spec through every
// allowed access form at all three privileges with a few data patterns, so
// the whole CSR surface is differentially exercised on plain `go test`.
func TestCSRAccessMatchesModel(t *testing.T) {
	e, err := cachedEngine("visionfive2")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seedFlag))
	vals := []uint64{0, ^uint64(0), 0x222, ScratchBase | 5, rng.Uint64(), rng.Uint64()}
	if testing.Short() {
		vals = vals[:3]
	}
	for ci := range e.GenCfg.CSRs {
		nforms := 0
		for _, fm := range csrForms {
			if e.GenCfg.CSRs[ci].Forms&fm.form != 0 {
				nforms++
			}
		}
		// formSel indexes the spec's allowed-forms list, so 0..nforms-1
		// covers every form this CSR admits.
		for fi := 0; fi < nforms; fi++ {
			for priv := uint8(0); priv < 3; priv++ {
				for _, v := range vals {
					rd, rs1 := uint8(rng.Intn(32)), uint8(rng.Intn(32))
					checkCSRAccess(t, uint8(ci), uint8(fi), rd, rs1, priv, v)
					if t.Failed() {
						t.Fatalf("csr spec %d form %d priv %d (seed %d)", ci, fi, priv, *seedFlag)
					}
				}
			}
		}
	}
}
