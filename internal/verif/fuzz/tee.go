package fuzz

import (
	"fmt"
	"math/rand"

	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/policy/ace"
	"govfm/internal/rv"
)

// The TEE lifecycle fuzzer: seeded random operation sequences over the
// ACE confidential-compute FSM, driven directly through the policy hook
// interface on a bare monitor-attached machine, checked against an
// independent shadow model after every operation. The shadow tracks what
// each lifecycle transition *should* have done (slot states, donation
// set, shared windows, launch measurements); any disagreement with the
// policy's own view, any structural-invariant violation, or any crack in
// the Dorami wall is a finding.

// TEEReport summarizes one fuzzdiff -tee run.
type TEEReport struct {
	Cases int // operation sequences executed
	Ops   int // lifecycle operations issued

	// Violations and HeavySwitches aggregate the policy's own counters:
	// the number of forged/ill-ordered calls it rejected and the number of
	// full scrub context switches it performed. A TEE run that exercised
	// the FSM has both well above zero.
	Violations    uint64
	HeavySwitches uint64

	Failures []string
}

// teeRegions is the donation pool: NAPOT-aligned 64 KiB regions in
// otherwise unused OS memory, far from the kernel image and the monitor.
func teeRegions() []uint64 {
	var rs []uint64
	for i := 0; i < 8; i++ {
		rs = append(rs, core.OSBase+0x400_0000+uint64(i)*0x20000)
	}
	return rs
}

const teeRegionSz = 0x10000

// teeShadow is the independent model of the FSM the fuzzer compares
// against.
type teeShadow struct {
	state    [ace.MaxCVMs]int // 0 free, 1 ready, 2 running
	shared   [ace.MaxCVMs]uint64
	measure  [ace.MaxCVMs]uint64
	base     [ace.MaxCVMs]uint64
	occupant int             // CVM occupying the hart, -1 when the host runs
	donated  map[uint64]bool // region base -> donated
}

func widenSBI(v int64) uint64 { return uint64(v) }

// RunTEE executes the TEE lifecycle fuzz campaign: cases operation
// sequences per profile, each on a fresh bare monitor with a fresh ACE
// policy.
func RunTEE(profiles []string, seed int64, cases int) (*TEEReport, error) {
	cfgs := map[string]func() *hart.Config{
		"visionfive2": hart.VisionFive2,
		"p550":        hart.PremierP550,
	}
	rep := &TEEReport{}
	for pi, p := range profiles {
		mk, ok := cfgs[p]
		if !ok {
			return nil, fmt.Errorf("unknown profile %q", p)
		}
		rng := rand.New(rand.NewSource(seed + int64(pi)*7919))
		for c := 0; c < cases; c++ {
			if err := runTEECase(rep, mk, rng, fmt.Sprintf("%s/case%d", p, c)); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

func runTEECase(rep *TEEReport, mk func() *hart.Config, rng *rand.Rand, name string) error {
	cfg := mk()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		return err
	}
	pol := ace.New()
	mon, err := core.Attach(m, core.Options{Policy: pol, FirmwareEntry: core.FirmwareBase})
	if err != nil {
		return err
	}
	mon.Boot()
	ctx := mon.Ctx[0]
	ctx.VirtMode = rv.ModeS

	fail := func(op string, format string, args ...any) {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("%s: %s: %s", name, op, fmt.Sprintf(format, args...)))
	}
	call := func(ext, fn, a0, a1, a2 uint64) uint64 {
		h := ctx.Hart
		h.Regs[17], h.Regs[16] = ext, fn
		h.Regs[10], h.Regs[11], h.Regs[12] = a0, a1, a2
		pol.OnOSEcall(ctx)
		rep.Ops++
		return h.Regs[10]
	}

	sh := &teeShadow{occupant: -1, donated: make(map[uint64]bool)}
	regions := teeRegions()
	sbiDenied := widenSBI(rv.SBIErrDenied)

	// check compares the policy's view of every slot with the shadow and
	// re-derives the structural invariants and the wall after op.
	check := func(op string) {
		for i := 0; i < ace.MaxCVMs; i++ {
			st, shared, err := pol.CVMState(i)
			if err != nil {
				fail(op, "CVMState(%d): %v", i, err)
				continue
			}
			if st != sh.state[i] || shared != sh.shared[i] {
				fail(op, "cvm %d state=%d shared=%#x, shadow wants state=%d shared=%#x",
					i, st, shared, sh.state[i], sh.shared[i])
			}
			if sh.state[i] != 0 && pol.Measurement(i) != sh.measure[i] {
				fail(op, "cvm %d measurement %#x, shadow wants %#x",
					i, pol.Measurement(i), sh.measure[i])
			}
		}
		if err := pol.CheckInvariants(); err != nil {
			fail(op, "invariants: %v", err)
		}
		if err := mon.CheckWall(ctx); err != nil {
			fail(op, "wall: %v", err)
		}
	}

	readySlots := func() []int {
		var s []int
		for i := 0; i < ace.MaxCVMs; i++ {
			if sh.state[i] == 1 {
				s = append(s, i)
			}
		}
		return s
	}
	freeRegion := func() (uint64, bool) {
		start := rng.Intn(len(regions))
		for i := 0; i < len(regions); i++ {
			r := regions[(start+i)%len(regions)]
			if !sh.donated[r] {
				return r, true
			}
		}
		return 0, false
	}
	anyFreeSlot := func() bool {
		for i := 0; i < ace.MaxCVMs; i++ {
			if sh.state[i] == 0 {
				return true
			}
		}
		return false
	}

	ops := 40 + rng.Intn(40)
	for op := 0; op < ops; op++ {
		if sh.occupant >= 0 {
			// A CVM holds the hart: issue guest-side traffic.
			v := sh.occupant
			switch rng.Intn(6) {
			case 0: // voluntary exit
				val := rng.Uint64()
				if r := call(rv.SBIExtCoveGuest, ace.FnGuestExit, val, 0, 0); r != val {
					fail("guest-exit", "host resumed with a0=%#x, want exit value %#x", r, val)
				}
				sh.state[v], sh.occupant = 1, -1
			case 1: // valid share
				page := sh.base[v] + uint64(rng.Intn(teeRegionSz/4096))*4096
				if r := call(rv.SBIExtCoveGuest, ace.FnGuestSharePage, page, 0, 0); r != ace.OK {
					fail("guest-share", "valid share of %#x returned %#x", page, r)
				} else {
					sh.shared[v] = page
				}
			case 2: // forged share: misaligned or outside the CVM
				page := sh.base[v] + 12
				if rng.Intn(2) == 0 {
					page = sh.base[v] + teeRegionSz
				}
				if r := call(rv.SBIExtCoveGuest, ace.FnGuestSharePage, page, 0, 0); r != ace.ErrInvalidParam {
					fail("guest-share-bad", "share of %#x returned %#x, want reject", page, r)
				}
			case 3: // local attestation
				if r := call(rv.SBIExtCoveGuest, ace.FnGuestAttest, 0, 0, 0); r != sh.measure[v] {
					fail("guest-attest", "returned %#x, want %#x", r, sh.measure[v])
				}
			case 4: // forged COVH from inside the CVM
				if r := call(rv.SBIExtCoveHost, ace.FnPromoteToCVM, sh.base[v], teeRegionSz, sh.base[v]); r != sbiDenied {
					fail("forged-covh", "COVH inside CVM returned %#x, want denied %#x", r, sbiDenied)
				}
			default: // unknown COVG function
				if r := call(rv.SBIExtCoveGuest, 0x7F, 0, 0, 0); r != ace.ErrInvalidParam {
					fail("guest-unknown", "unknown COVG fn returned %#x", r)
				}
			}
			check("guest-op")
			continue
		}

		// The host holds the hart.
		switch rng.Intn(10) {
		case 0, 1: // valid promote
			reg, ok := freeRegion()
			if !ok {
				continue
			}
			r := call(rv.SBIExtCoveHost, ace.FnPromoteToCVM, reg, teeRegionSz, reg)
			if !anyFreeSlot() {
				if r != ace.ErrInvalidParam {
					fail("promote-full", "promote with all slots live returned %#x", r)
				}
				break
			}
			if r >= ace.MaxCVMs {
				fail("promote", "valid promote of %#x returned %#x", reg, r)
				break
			}
			id := int(r)
			if sh.state[id] != 0 {
				fail("promote", "policy reused live slot %d", id)
				break
			}
			sh.state[id], sh.base[id] = 1, reg
			sh.shared[id] = 0
			sh.measure[id] = pol.Measurement(id)
			if sh.measure[id] == 0 {
				fail("promote", "live cvm %d measured 0", id)
			}
			sh.donated[reg] = true
		case 2: // geometry-invalid promote
			reg := regions[rng.Intn(len(regions))]
			bad := [][3]uint64{
				{reg + 4, teeRegionSz, reg + 4},                   // misaligned base
				{reg, teeRegionSz + 4096, reg},                    // non-power-of-two size
				{reg, teeRegionSz, reg - 8},                       // entry outside
				{core.MiralisBase, teeRegionSz, core.MiralisBase}, // monitor overlap
			}
			b := bad[rng.Intn(len(bad))]
			if r := call(rv.SBIExtCoveHost, ace.FnPromoteToCVM, b[0], b[1], b[2]); r != ace.ErrInvalidParam {
				fail("promote-bad", "promote(%#x,%#x,%#x) returned %#x, want reject", b[0], b[1], b[2], r)
			}
		case 3: // double donation
			var taken uint64
			for r, d := range sh.donated {
				if d {
					taken = r
					break
				}
			}
			if taken == 0 {
				continue
			}
			if r := call(rv.SBIExtCoveHost, ace.FnPromoteToCVM, taken, teeRegionSz, taken); r != ace.ErrInvalidParam {
				fail("double-donate", "re-promote of donated %#x returned %#x, want reject", taken, r)
			}
		case 4: // run a ready CVM (the hart steal)
			rs := readySlots()
			if len(rs) == 0 {
				continue
			}
			id := rs[rng.Intn(len(rs))]
			call(rv.SBIExtCoveHost, ace.FnRunCVM, uint64(id), 0, 0)
			sh.state[id], sh.occupant = 2, id
		case 5: // forged steal: free or out-of-range id
			id := uint64(ace.MaxCVMs + rng.Intn(3))
			if rng.Intn(2) == 0 {
				for i := 0; i < ace.MaxCVMs; i++ {
					if sh.state[i] == 0 {
						id = uint64(i)
						break
					}
				}
			}
			if id < ace.MaxCVMs && sh.state[id] != 0 {
				continue
			}
			if r := call(rv.SBIExtCoveHost, ace.FnRunCVM, id, 0, 0); r != ace.ErrInvalidParam {
				fail("forged-steal", "run of cvm %d returned %#x, want reject", id, r)
			}
		case 6: // destroy
			rs := readySlots()
			if len(rs) == 0 {
				if r := call(rv.SBIExtCoveHost, ace.FnDestroyCVM, uint64(rng.Intn(ace.MaxCVMs+2)), 0, 0); r != ace.ErrInvalidParam {
					fail("destroy-bogus", "destroy of dead/bogus id returned %#x", r)
				}
				break
			}
			id := rs[rng.Intn(len(rs))]
			if r := call(rv.SBIExtCoveHost, ace.FnDestroyCVM, uint64(id), 0, 0); r != ace.OK {
				fail("destroy", "destroy of ready cvm %d returned %#x", id, r)
				break
			}
			delete(sh.donated, sh.base[id])
			sh.state[id], sh.base[id], sh.shared[id], sh.measure[id] = 0, 0, 0, 0
		case 7: // reclaim the shared window
			id := rng.Intn(ace.MaxCVMs)
			r := call(rv.SBIExtCoveHost, ace.FnReclaimPage, uint64(id), 0, 0)
			switch {
			case sh.state[id] == 1 && sh.shared[id] != 0:
				if r != ace.OK {
					fail("reclaim", "reclaim of shared cvm %d returned %#x", id, r)
				} else {
					sh.shared[id] = 0
				}
			default:
				if r != ace.ErrInvalidParam {
					fail("reclaim-bad", "reclaim of cvm %d (state %d shared %#x) returned %#x, want reject",
						id, sh.state[id], sh.shared[id], r)
				}
			}
		case 8: // host attestation
			id := rng.Intn(ace.MaxCVMs)
			r := call(rv.SBIExtCoveHost, ace.FnAttestCVM, uint64(id), 0, 0)
			if sh.state[id] != 0 {
				if r != sh.measure[id] {
					fail("attest", "cvm %d attested %#x, want %#x", id, r, sh.measure[id])
				}
			} else if r != ace.ErrInvalidParam {
				fail("attest-free", "attest of free cvm %d returned %#x", id, r)
			}
		default: // forged COVG from the host (no CVM on the hart)
			fns := []uint64{ace.FnGuestExit, ace.FnGuestSharePage, ace.FnGuestAttest}
			if r := call(rv.SBIExtCoveGuest, fns[rng.Intn(len(fns))], rng.Uint64(), 0, 0); r != sbiDenied {
				fail("forged-covg", "COVG with no CVM returned %#x, want denied %#x", r, sbiDenied)
			}
		}
		check("host-op")
	}

	// Fork independence: a forked policy must keep its own CVM world when
	// the parent's is torn down. (Only when the host holds the hart — a
	// COVH destroy from inside a CVM would be denied as forged.)
	if rs := readySlots(); len(rs) > 0 && sh.occupant < 0 {
		fp, ok := pol.ForkPolicy().(*ace.Policy)
		if !ok {
			fail("fork", "ForkPolicy did not return *ace.Policy")
		} else {
			id := rs[0]
			if r := call(rv.SBIExtCoveHost, ace.FnDestroyCVM, uint64(id), 0, 0); r != ace.OK {
				fail("fork", "parent destroy of cvm %d returned %#x", id, r)
			}
			delete(sh.donated, sh.base[id])
			sh.state[id], sh.base[id], sh.shared[id], sh.measure[id] = 0, 0, 0, 0
			st, _, err := fp.CVMState(id)
			if err != nil || st != 1 {
				fail("fork", "fork lost cvm %d after parent destroy (state %d, %v)", id, st, err)
			}
			if fp.Measurement(id) == 0 {
				fail("fork", "fork lost cvm %d measurement", id)
			}
			if err := fp.CheckInvariants(); err != nil {
				fail("fork", "fork invariants: %v", err)
			}
			check("fork-destroy")
		}
	}

	rep.Cases++
	rep.Violations += pol.Violations
	rep.HeavySwitches += pol.HeavySwitches
	return nil
}
