package fuzz

import (
	"bytes"
	"fmt"
	"math/rand"

	"govfm/internal/hart"
	"govfm/internal/refmodel"
)

// This file implements the fastpath-equivalence mode: every test case runs
// twice, once with the host acceleration caches on and once with them off,
// and the two executions must agree on everything architectural — final
// findings, lockstep step counts, registers, CSRs, memory, and (crucially)
// the simulated cycle counters. Any disagreement means a host cache leaked
// into the architecture, which is the one bug class the caches must never
// have.

// DefaultFastPath is the host-acceleration setting NewEngine applies to
// freshly built engines. cmd/fuzzdiff's -fastpath=off sets it false so a
// whole fuzzing run can exercise the reference paths.
var DefaultFastPath = true

// SetFastPath toggles host-side acceleration on both of the engine's
// machines (the native one and the monitor-virtualized one).
func (e *Engine) SetFastPath(on bool) {
	e.Native.SetFastPath(on)
	e.Virt.SetFastPath(on)
}

// EquivMismatch is one fast-vs-slow divergence.
type EquivMismatch struct {
	Profile string
	Case    *TestCase
	Desc    string
}

func (m *EquivMismatch) String() string {
	return fmt.Sprintf("[%s] %s in %s", m.Profile, m.Desc, m.Case)
}

// EquivStats summarizes an equivalence run.
type EquivStats struct {
	Cases      int
	Steps      int // lockstep steps on the fast side
	Mismatches []*EquivMismatch
}

// enginePair is one profile's fast/slow engine duo plus its case corpus.
type enginePair struct {
	fast, slow *Engine
	corpus     []*TestCase
}

// NewEquivalence builds paired engines for each profile: one with all host
// caches enabled, one with the reference (cache-free) configuration.
func newEquivPairs(profiles []string) ([]*enginePair, error) {
	var pairs []*enginePair
	for _, p := range profiles {
		ef, err := NewEngine(p)
		if err != nil {
			return nil, err
		}
		es, err := NewEngine(p)
		if err != nil {
			return nil, err
		}
		ef.SetFastPath(true)
		es.SetFastPath(false)
		pairs = append(pairs, &enginePair{fast: ef, slow: es})
	}
	return pairs, nil
}

// RunEquivalence fuzzes `cases` test cases per profile through the paired
// engines, using the fast side's coverage signal to grow a shared corpus
// (the same coverage-guided exploration as the normal fuzzer, so the
// equivalence gate visits the same interesting trap/emulation paths).
func RunEquivalence(profiles []string, seed int64, cases int) (*EquivStats, error) {
	pairs, err := newEquivPairs(profiles)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	coverage := map[uint64]struct{}{}
	st := &EquivStats{}
	for c := 0; c < cases*len(pairs); c++ {
		pr := pairs[c%len(pairs)]
		var tc *TestCase
		if len(pr.corpus) == 0 || rng.Intn(3) == 0 {
			tc = pr.fast.GenCase(rng)
		} else {
			parent := pr.corpus[rng.Intn(len(pr.corpus))]
			var other *TestCase
			if len(pr.corpus) > 1 {
				other = pr.corpus[rng.Intn(len(pr.corpus))]
			}
			tc = pr.fast.Mutate(rng, parent, other)
		}

		newKeys := 0
		pr.fast.Cov = func(key uint64) {
			if _, ok := coverage[key]; !ok {
				coverage[key] = struct{}{}
				newKeys++
			}
		}
		fF, stepsF := pr.fast.Run(tc)
		pr.fast.Cov = nil
		fS, stepsS := pr.slow.Run(tc)

		st.Cases++
		st.Steps += stepsF
		if desc := equivCompare(pr.fast, pr.slow, fF, fS, stepsF, stepsS); desc != "" {
			st.Mismatches = append(st.Mismatches, &EquivMismatch{
				Profile: pr.fast.Profile, Case: tc, Desc: desc})
			if len(st.Mismatches) >= 10 {
				break
			}
		}
		if newKeys > 0 && len(pr.corpus) < corpusCap {
			pr.corpus = append(pr.corpus, tc)
		}
	}
	return st, nil
}

// equivCompare checks every observable of a finished case pair and returns
// a description of the first divergence, or "".
func equivCompare(eF, eS *Engine, fF, fS *Finding, stepsF, stepsS int) string {
	if (fF == nil) != (fS == nil) {
		return fmt.Sprintf("finding presence: fast=%v slow=%v", fF, fS)
	}
	if fF != nil && (fF.Where != fS.Where || fF.Step != fS.Step) {
		return fmt.Sprintf("finding: fast=%s@%d slow=%s@%d", fF.Where, fF.Step, fS.Where, fS.Step)
	}
	if stepsF != stepsS {
		return fmt.Sprintf("lockstep steps: fast=%d slow=%d", stepsF, stepsS)
	}
	for _, side := range []struct {
		name   string
		mF, mS *hart.Machine
	}{{"native", eF.Native, eS.Native}, {"virt", eF.Virt, eS.Virt}} {
		hF, hS := side.mF.Harts[0], side.mS.Harts[0]
		// Cycle-count equivalence is the paper-metric invariant: the host
		// caches must not change a single charged cycle.
		if hF.Cycles != hS.Cycles {
			return fmt.Sprintf("%s cycles: fast=%d slow=%d", side.name, hF.Cycles, hS.Cycles)
		}
		if hF.Instret != hS.Instret || hF.SInstret != hS.SInstret {
			return fmt.Sprintf("%s instret: fast=%d/%d slow=%d/%d",
				side.name, hF.Instret, hF.SInstret, hS.Instret, hS.SInstret)
		}
		if hF.PC != hS.PC || hF.Mode != hS.Mode || hF.Waiting != hS.Waiting {
			return fmt.Sprintf("%s pc/mode/wfi: fast=%#x/%v/%v slow=%#x/%v/%v",
				side.name, hF.PC, hF.Mode, hF.Waiting, hS.PC, hS.Mode, hS.Waiting)
		}
		if hF.Regs != hS.Regs {
			return side.name + " register file differs"
		}
		for _, r := range [][2]uint64{{ProgBase, ProgCap}, {ScratchBase, ScratchSize}} {
			bF, err1 := side.mF.Bus.ReadBytes(r[0], int(r[1]))
			bS, err2 := side.mS.Bus.ReadBytes(r[0], int(r[1]))
			if err1 != nil || err2 != nil || !bytes.Equal(bF, bS) {
				return fmt.Sprintf("%s memory at %#x differs", side.name, r[0])
			}
		}
	}
	// Full CSR comparison through the reference-model views.
	if ds := refmodel.Diff(eF.PhysCfg, eF.nativeView(), eS.nativeView()); len(ds) > 0 {
		return "native CSR state: " + ds[0].String()
	}
	if ds := refmodel.Diff(eF.VirtCfg, eF.virtView(), eS.virtView()); len(ds) > 0 {
		return "virt CSR state: " + ds[0].String()
	}
	return ""
}
