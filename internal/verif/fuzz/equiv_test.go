package fuzz

import "testing"

// TestEquivalenceSmoke runs a short fast-vs-slow lockstep batch on both
// profiles and requires zero divergences in architectural state and cycle
// counts. The full-size run is scripts/verify.sh's tier-2 gate.
func TestEquivalenceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence smoke is not short")
	}
	st, err := RunEquivalence([]string{"visionfive2", "p550"}, 1, 150)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cases == 0 || st.Steps == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
	for _, m := range st.Mismatches {
		t.Errorf("fastpath divergence: %s", m)
	}
	t.Logf("equivalence: %d cases, %d steps, %d mismatches", st.Cases, st.Steps, len(st.Mismatches))
}
