package fuzz

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"

	"govfm/internal/asm"
	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// This file implements the scheduler-equivalence mode: randomized
// multi-hart cases run twice, once under the sequential round-robin
// scheduler and once under the quantum-based parallel scheduler, and the
// two executions must agree on every architectural observable — per-hart
// cycle counters, registers, CSRs, memory, and the machine halt state.
//
// The generated system is *closed per hart* so bit-exact agreement is a
// theorem rather than a hope: each hart is confined by locked PMP entries
// to its own program and scratch windows (locked entries bind M-mode too,
// and only a full reset clears them), the CLINT is quiesced (CyclesPerTick
// is zero so mtime never moves, comparators sit at the reset "never"
// value), and the generator never touches an interrupt-pending CSR. Under
// those constraints the parallel scheduler's quantum-granular cross-hart
// visibility has nothing to reorder, so for any quantum the end state of
// RunParBudget(k) must equal k sequential machine steps exactly. Monitored
// machines are deliberately out of scope: HandleMTrap runs at barriers, so
// monitored timing is quantum-granular by design (see DESIGN.md).

// schedQuanta are the slice lengths cases cycle through; 1 maximizes
// barrier crossings, 1024 is the production default.
var schedQuanta = []uint64{1, 7, 64, 1024}

// schedHartCounts are the machine sizes cases cycle through.
var schedHartCounts = []int{2, 4}

// schedGenCSRs is the CSR surface generated programs may touch. All of it
// is hart-local plumbing; interrupt-pending and translation CSRs stay off
// the list so the closed-system invariant holds.
var schedGenCSRs = []asm.GenCSR{
	{CSR: rv.CSRMscratch, Forms: asm.FormsAll},
	{CSR: rv.CSRSscratch, Forms: asm.FormsAll},
	{CSR: rv.CSRMtvec, Forms: asm.FormsAll},
	{CSR: rv.CSRStvec, Forms: asm.FormsAll},
	{CSR: rv.CSRMepc, Forms: asm.FormsAll},
	{CSR: rv.CSRSepc, Forms: asm.FormsAll},
	{CSR: rv.CSRMcause, Forms: asm.FormsAll},
	{CSR: rv.CSRScause, Forms: asm.FormsAll},
	{CSR: rv.CSRMtval, Forms: asm.FormsAll},
	{CSR: rv.CSRStval, Forms: asm.FormsAll},
	{CSR: rv.CSRMie, Forms: asm.FormsAll},
	{CSR: rv.CSRMedeleg, Forms: asm.FormsAll},
	{CSR: rv.CSRMstatus, Forms: asm.FormsImm},
	{CSR: rv.CSRMhartid, Forms: asm.FormsRead},
}

// schedHartInit is one hart's generated starting state.
type schedHartInit struct {
	Regs    [32]uint64
	Mstatus uint64
	Mie     uint64
	Medeleg uint64
	Mtvec   uint64
	Stvec   uint64
	Mepc    uint64
	Sepc    uint64

	Mscratch, Sscratch uint64
	Mcause, Scause     uint64
	Mtval, Stval       uint64
}

// SchedCase is one scheduler-equivalence input: per-hart programs and
// starting states, plus the quantum the parallel side runs with.
type SchedCase struct {
	Profile string
	Harts   int
	Quantum uint64
	Progs   [][]uint32
	Init    []schedHartInit
}

func (tc *SchedCase) String() string {
	return fmt.Sprintf("schedcase{%s, harts=%d, quantum=%d}",
		tc.Profile, tc.Harts, tc.Quantum)
}

// SchedMismatch is one seq-vs-par divergence.
type SchedMismatch struct {
	Case *SchedCase
	Desc string
}

func (m *SchedMismatch) String() string { return m.Desc + " in " + m.Case.String() }

// SchedEquivStats summarizes a scheduler-equivalence run.
type SchedEquivStats struct {
	Cases      int
	Steps      int // sequential machine steps across all cases
	Mismatches []*SchedMismatch
}

// schedPair is one (profile, hart-count) configuration's machine duo,
// reused across cases through full machine resets — which also soak-tests
// that Reset really does return locked PMP entries and device state to
// power-on (the reset bugfix this PR carries).
type schedPair struct {
	profile  string
	harts    int
	seq, par *hart.Machine
	genCfg   asm.GenCfg
	progZero []byte
	scrZero  []byte
}

func newSchedPair(profile string, harts int) (*schedPair, error) {
	mk, ok := hart.Profiles()[profile]
	if !ok {
		return nil, fmt.Errorf("fuzz: unknown profile %q", profile)
	}
	p := &schedPair{
		profile:  profile,
		harts:    harts,
		progZero: make([]byte, ProgCap),
		scrZero:  make([]byte, ScratchSize),
		genCfg: asm.GenCfg{
			Slots:      Slots,
			DataRegs:   []int{10, 11, 12, 13, 14, 15},
			BaseRegs:   []int{16, 17, 18},
			BaseWindow: 2048,
			CSRs:       schedGenCSRs,
		},
	}
	for _, dst := range []**hart.Machine{&p.seq, &p.par} {
		cfg := mk()
		cfg.Harts = harts
		// Freeze the wall clock: mtime must not depend on how steps group
		// into rounds, so it simply never advances.
		cfg.CyclesPerTick = 0
		m, err := hart.NewMachine(cfg, core.DramSize)
		if err != nil {
			return nil, err
		}
		*dst = m
	}
	p.par.Sched = hart.SchedPar
	return p, nil
}

// Per-hart window addresses. Prog windows tile the firmware region,
// scratch windows the OS region; both strides keep NAPOT alignment.
func (p *schedPair) progBase(i int) uint64 { return ProgBase + uint64(i)*ProgCap }
func (p *schedPair) scratchBase(i int) uint64 {
	return ScratchBase + uint64(i)*ScratchSize
}

// napotAddr encodes a pmpaddr NAPOT match over [base, base+size) — size a
// power of two ≥ 8, base size-aligned.
func napotAddr(base, size uint64) uint64 { return (base >> 2) | (size>>3 - 1) }

// genSchedCase draws one case for this pair's configuration.
func (p *schedPair) genSchedCase(rng *rand.Rand, quantum uint64) *SchedCase {
	tc := &SchedCase{
		Profile: p.profile,
		Harts:   p.harts,
		Quantum: quantum,
		Progs:   make([][]uint32, p.harts),
		Init:    make([]schedHartInit, p.harts),
	}
	for i := 0; i < p.harts; i++ {
		tc.Progs[i] = asm.Generate(rng, &p.genCfg)
		in := &tc.Init[i]
		for r := 1; r < 32; r++ {
			in.Regs[r] = randValue(rng)
		}
		for _, r := range p.genCfg.BaseRegs {
			base := p.scratchBase(i) + uint64(rng.Intn(ScratchSize-4096))&^7
			if rng.Intn(6) == 0 {
				base |= uint64(rng.Intn(8))
			}
			in.Regs[r] = base
		}
		slot := func() uint64 { return p.progBase(i) + uint64(4*rng.Intn(Slots)) }
		in.Mtvec = slot() | uint64(rng.Intn(2))
		in.Stvec = slot() | uint64(rng.Intn(2))
		in.Mepc, in.Sepc = slot(), slot()
		in.Mstatus = rng.Uint64()&(uint64(1)<<1|1<<3|1<<5|1<<7|1<<8) |
			[]uint64{0, 1, 3}[rng.Intn(3)]<<11
		in.Mie = rng.Uint64() & 0xAAA
		in.Medeleg = rng.Uint64() & 0xB3FF
		in.Mscratch, in.Sscratch = rng.Uint64(), rng.Uint64()
		in.Mcause, in.Scause = rng.Uint64(), rng.Uint64()
		in.Mtval, in.Stval = rng.Uint64(), rng.Uint64()
	}
	return tc
}

// install writes the case onto a machine: full reset, per-hart program and
// scratch images, starting CSR/register state, and the locked-PMP
// confinement that makes each hart a closed system. Entry 0 grants the
// hart its own program window, entry 1 its own scratch window, and locked
// entry 2 blankets the rest of the address space with no permissions —
// shadowing everything else from every privilege level, M included.
func (p *schedPair) install(m *hart.Machine, tc *SchedCase) {
	m.Reset(ProgBase)
	m.Quantum = tc.Quantum
	for i, h := range m.Harts {
		prog := make([]byte, 4*len(tc.Progs[i]))
		for j, w := range tc.Progs[i] {
			binary.LittleEndian.PutUint32(prog[4*j:], w)
		}
		m.LoadImage(p.progBase(i), p.progZero)
		m.LoadImage(p.scratchBase(i), p.scrZero)
		m.LoadImage(p.progBase(i), prog)

		in := &tc.Init[i]
		h.Regs = in.Regs
		h.Regs[0] = 0
		h.PC = p.progBase(i)
		h.Mode = rv.ModeM
		c := &h.CSR
		c.WriteMstatus(in.Mstatus)
		c.Mie = in.Mie
		c.Medeleg = in.Medeleg
		c.Mtvec, c.Stvec = in.Mtvec, in.Stvec
		c.Mepc, c.Sepc = in.Mepc, in.Sepc
		c.Mscratch, c.Sscratch = in.Mscratch, in.Sscratch
		c.Mcause, c.Scause = in.Mcause, in.Scause
		c.Mtval, c.Stval = in.Mtval, in.Stval

		f := c.PMP
		rwxNapot := uint8(pmp.CfgL | pmp.CfgR | pmp.CfgW | pmp.CfgX | pmp.ANapot<<3)
		f.ForceAddr(0, napotAddr(p.progBase(i), ProgCap))
		f.ForceCfg(0, rwxNapot)
		f.ForceAddr(1, napotAddr(p.scratchBase(i), ScratchSize))
		f.ForceCfg(1, rwxNapot)
		f.ForceAddr(2, rv.Mask(54))
		f.ForceCfg(2, pmp.CfgL|pmp.ANapot<<3)
	}
}

// csrDelta returns the first CSR field differing between the two harts'
// files, or "".
func csrDelta(a, b *hart.CSRFile) string {
	fields := []struct {
		name string
		a, b uint64
	}{
		{"mstatus", a.Mstatus, b.Mstatus}, {"medeleg", a.Medeleg, b.Medeleg},
		{"mideleg", a.Mideleg, b.Mideleg}, {"mie", a.Mie, b.Mie},
		{"mtvec", a.Mtvec, b.Mtvec}, {"mcounteren", a.Mcounteren, b.Mcounteren},
		{"menvcfg", a.Menvcfg, b.Menvcfg}, {"mscratch", a.Mscratch, b.Mscratch},
		{"mepc", a.Mepc, b.Mepc}, {"mcause", a.Mcause, b.Mcause},
		{"mtval", a.Mtval, b.Mtval}, {"mseccfg", a.Mseccfg, b.Mseccfg},
		{"mcountinhibit", a.Mcountinhibit, b.Mcountinhibit},
		{"stvec", a.Stvec, b.Stvec}, {"scounteren", a.Scounteren, b.Scounteren},
		{"senvcfg", a.Senvcfg, b.Senvcfg}, {"sscratch", a.Sscratch, b.Sscratch},
		{"sepc", a.Sepc, b.Sepc}, {"scause", a.Scause, b.Scause},
		{"stval", a.Stval, b.Stval}, {"satp", a.Satp, b.Satp},
		{"stimecmp", a.Stimecmp, b.Stimecmp},
		{"mip", a.Mip(0), b.Mip(0)},
	}
	for _, f := range fields {
		if f.a != f.b {
			return fmt.Sprintf("%s: seq=%#x par=%#x", f.name, f.a, f.b)
		}
	}
	for i := 0; i < a.PMP.NumEntries(); i++ {
		if a.PMP.Cfg(i) != b.PMP.Cfg(i) || a.PMP.Addr(i) != b.PMP.Addr(i) {
			return fmt.Sprintf("pmp%d: seq=%#x/%#x par=%#x/%#x",
				i, a.PMP.Cfg(i), a.PMP.Addr(i), b.PMP.Cfg(i), b.PMP.Addr(i))
		}
	}
	return ""
}

// schedCompare checks every observable of a finished case pair and returns
// a description of the first divergence, or "".
func (p *schedPair) schedCompare() string {
	sh, sr := p.seq.Halted()
	ph, pr := p.par.Halted()
	if sh != ph || sr != pr {
		return fmt.Sprintf("machine halt: seq=%v/%q par=%v/%q", sh, sr, ph, pr)
	}
	for i := range p.seq.Harts {
		hS, hP := p.seq.Harts[i], p.par.Harts[i]
		if hS.Cycles != hP.Cycles {
			return fmt.Sprintf("hart%d cycles: seq=%d par=%d", i, hS.Cycles, hP.Cycles)
		}
		if hS.Instret != hP.Instret || hS.SInstret != hP.SInstret {
			return fmt.Sprintf("hart%d instret: seq=%d/%d par=%d/%d",
				i, hS.Instret, hS.SInstret, hP.Instret, hP.SInstret)
		}
		if hS.PC != hP.PC || hS.Mode != hP.Mode || hS.Waiting != hP.Waiting ||
			hS.Halted != hP.Halted {
			return fmt.Sprintf("hart%d pc/mode/wfi/halt: seq=%#x/%v/%v/%v par=%#x/%v/%v/%v",
				i, hS.PC, hS.Mode, hS.Waiting, hS.Halted,
				hP.PC, hP.Mode, hP.Waiting, hP.Halted)
		}
		if hS.Regs != hP.Regs {
			return fmt.Sprintf("hart%d register file differs", i)
		}
		if d := csrDelta(&hS.CSR, &hP.CSR); d != "" {
			return fmt.Sprintf("hart%d %s", i, d)
		}
		for _, r := range [][2]uint64{
			{p.progBase(i), ProgCap}, {p.scratchBase(i), ScratchSize}} {
			bS, err1 := p.seq.Bus.ReadBytes(r[0], int(r[1]))
			bP, err2 := p.par.Bus.ReadBytes(r[0], int(r[1]))
			if err1 != nil || err2 != nil || !bytes.Equal(bS, bP) {
				return fmt.Sprintf("hart%d memory at %#x differs", i, r[0])
			}
		}
	}
	return ""
}

// RunSchedEquivalence fuzzes `cases` scheduler-equivalence cases per
// profile, spread across hart counts and quanta. Every case runs the
// sequential scheduler for up to StepBudget machine steps, then replays
// the identical initial state under the parallel scheduler with the same
// per-hart step budget, and compares end states bit for bit.
func RunSchedEquivalence(profiles []string, seed int64, cases int) (*SchedEquivStats, error) {
	var pairs []*schedPair
	for _, prof := range profiles {
		for _, n := range schedHartCounts {
			p, err := newSchedPair(prof, n)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, p)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	st := &SchedEquivStats{}
	for c := 0; c < cases*len(profiles); c++ {
		p := pairs[c%len(pairs)]
		tc := p.genSchedCase(rng, schedQuanta[c%len(schedQuanta)])

		p.install(p.seq, tc)
		k, _ := p.seq.Run(StepBudget)

		p.install(p.par, tc)
		p.par.RunParBudget(k)

		st.Cases++
		st.Steps += int(k)
		if desc := p.schedCompare(); desc != "" {
			st.Mismatches = append(st.Mismatches, &SchedMismatch{Case: tc, Desc: desc})
			if len(st.Mismatches) >= 10 {
				break
			}
		}
	}
	return st, nil
}
