package fuzz

import "govfm/internal/refmodel"

// Minimize shrinks a finding's test case while preserving *some*
// divergence (not necessarily the original one — a smaller case exposing a
// different symptom of the same bug is just as useful and usually more
// readable). It nops out instruction ranges by binary descent, then
// simplifies the starting state field by field, iterating to a fixpoint.
func Minimize(e *Engine, f *Finding) *Finding {
	last := f
	diverges := func(tc *TestCase) bool {
		fd, _ := e.Run(tc)
		if fd != nil {
			last = fd
		}
		return fd != nil
	}
	minimizeWith(diverges, f.Case)
	return last
}

const nop = 0x13 // addi x0, x0, 0

// minimizeWith is the predicate-driven core: it mutates tc in place toward
// the smallest case for which diverges keeps returning true. diverges must
// be deterministic. Separated from Minimize so the descent algorithm is
// unit-testable against synthetic predicates.
func minimizeWith(diverges func(*TestCase) bool, tc *TestCase) {
	if !diverges(tc) {
		return // not reproducible; leave untouched
	}
	for round := 0; round < 3; round++ {
		changed := false
		if nopOutProgram(diverges, tc) {
			changed = true
		}
		if reduceState(diverges, tc) {
			changed = true
		}
		if !changed {
			break
		}
	}
}

// nopOutProgram replaces instruction ranges with nops, halving the chunk
// size down to single slots. Reports whether anything was removed.
func nopOutProgram(diverges func(*TestCase) bool, tc *TestCase) bool {
	changed := false
	for chunk := len(tc.Prog); chunk >= 1; chunk /= 2 {
		for lo := 0; lo < len(tc.Prog); lo += chunk {
			hi := lo + chunk
			if hi > len(tc.Prog) {
				hi = len(tc.Prog)
			}
			saved := make([]uint32, hi-lo)
			copy(saved, tc.Prog[lo:hi])
			allNop := true
			for i := lo; i < hi; i++ {
				if tc.Prog[i] != nop {
					allNop = false
				}
				tc.Prog[i] = nop
			}
			if allNop {
				continue
			}
			if diverges(tc) {
				changed = true
			} else {
				copy(tc.Prog[lo:hi], saved)
			}
		}
	}
	return changed
}

// reduceState tries field-by-field simplifications of the starting state,
// keeping each one only if the case still diverges.
func reduceState(diverges func(*TestCase) bool, tc *TestCase) bool {
	changed := false
	try := func(apply func(s *refmodel.State)) {
		saved := tc.State.Clone()
		apply(tc.State)
		if diverges(tc) {
			changed = true
		} else {
			tc.State = saved
		}
	}

	for i := 1; i < 32; i++ {
		i := i
		if tc.State.Regs[i] != 0 {
			try(func(s *refmodel.State) { s.Regs[i] = 0 })
		}
	}
	zeroFields := []func(s *refmodel.State) *uint64{
		func(s *refmodel.State) *uint64 { return &s.Medeleg },
		func(s *refmodel.State) *uint64 { return &s.Mie },
		func(s *refmodel.State) *uint64 { return &s.MipSW },
		func(s *refmodel.State) *uint64 { return &s.Mcause },
		func(s *refmodel.State) *uint64 { return &s.Scause },
		func(s *refmodel.State) *uint64 { return &s.Mtval },
		func(s *refmodel.State) *uint64 { return &s.Stval },
		func(s *refmodel.State) *uint64 { return &s.Mscratch },
		func(s *refmodel.State) *uint64 { return &s.Sscratch },
		func(s *refmodel.State) *uint64 { return &s.Mcounteren },
		func(s *refmodel.State) *uint64 { return &s.Scounteren },
		func(s *refmodel.State) *uint64 { return &s.Senvcfg },
		func(s *refmodel.State) *uint64 { return &s.Mseccfg },
		func(s *refmodel.State) *uint64 { return &s.Mcountinhibit },
		func(s *refmodel.State) *uint64 { return &s.Satp },
		func(s *refmodel.State) *uint64 { return &s.Stimecmp },
		func(s *refmodel.State) *uint64 { return &s.Hstatus },
		func(s *refmodel.State) *uint64 { return &s.Hedeleg },
		func(s *refmodel.State) *uint64 { return &s.Hideleg },
		func(s *refmodel.State) *uint64 { return &s.Hie },
		func(s *refmodel.State) *uint64 { return &s.Vsstatus },
		func(s *refmodel.State) *uint64 { return &s.Vsatp },
	}
	for _, fieldOf := range zeroFields {
		fieldOf := fieldOf
		if *fieldOf(tc.State) != 0 {
			try(func(s *refmodel.State) { *fieldOf(s) = 0 })
		}
	}
	if tc.State.Status.Bits() != refmodel.NewState().Status.Bits() {
		try(func(s *refmodel.State) { s.Status = refmodel.MstatusFromBits(0) })
	}
	if tc.State.Priv != refmodel.M {
		try(func(s *refmodel.State) { s.Priv = refmodel.M })
	}
	for _, f := range []func(s *refmodel.State) *uint64{
		func(s *refmodel.State) *uint64 { return &s.Mtvec },
		func(s *refmodel.State) *uint64 { return &s.Stvec },
		func(s *refmodel.State) *uint64 { return &s.Mepc },
		func(s *refmodel.State) *uint64 { return &s.Sepc },
	} {
		f := f
		if *f(tc.State) != ProgBase {
			try(func(s *refmodel.State) { *f(s) = ProgBase })
		}
	}
	for i := range tc.State.PmpCfg {
		i := i
		if tc.State.PmpCfg[i] != 0 || tc.State.PmpAddr[i] != 0 {
			try(func(s *refmodel.State) { s.PmpCfg[i], s.PmpAddr[i] = 0, 0 })
		}
	}
	for n, v := range tc.State.Custom {
		n, v := n, v
		if v != 0 {
			try(func(s *refmodel.State) { s.Custom[n] = 0 })
		}
	}
	if tc.State.PC != ProgBase {
		try(func(s *refmodel.State) { s.PC = ProgBase })
	}
	return changed
}
