package fuzz

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"

	"govfm/internal/asm"
	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

// This file implements the superblock-equivalence mode: randomized
// single-hart cases run three times from the identical initial state —
// once on the plain interpreter (fast path off), once with the host fast
// path on but the superblock tier off, and once with the full stack — and
// all three executions must agree on every architectural observable,
// including the cycle and instret counters bit for bit.
//
// Unlike the scheduler-equivalence mode, the wall clock here is LIVE: the
// profile's CyclesPerTick stands, and roughly half the cases program a
// nearby mtimecmp so the comparator crosses mid-run. That is deliberate —
// the superblock tier's cycle-budget headroom (machine.go,
// sbSeqHeadroom) exists precisely so a block never retires an instruction
// the interpreter would have preempted with a timer interrupt, and only a
// moving clock can falsify it. A slice of cases also aims a store base
// register at the hart's own program window, so generated stores
// self-modify code under translated blocks; others reach the PMP config
// CSRs, so pmpEpoch guard misses occur organically. The generated
// programs already carry sfence.vma, fence.i, wfi, and world switches
// (asm.genPriv), all of which must end or invalidate blocks correctly.
//
// Cases alternate between the sequential and the parallel scheduler, but
// all three machines of a case always run under the SAME scheduler — this
// gate isolates the execution tier, schedequiv.go isolates the scheduler.

// sbStepBudget is the per-case step budget. It is deliberately larger
// than the fuzzer's StepBudget so generated loops cross the translation
// heat threshold and actually execute inside blocks.
const sbStepBudget = 1024

// sbGenCSRs extends the scheduler-equivalence CSR surface with the PMP
// configuration CSRs. Entries 0..2 are locked by install (writes to them
// are ignored), and every address matches one of them, so writes to the
// unlocked entries 3+ are architecturally inert — but they bump the PMP
// epoch, forcing superblock entry-guard misses mid-program.
var sbGenCSRs = append(append([]asm.GenCSR{}, schedGenCSRs...),
	asm.GenCSR{CSR: rv.CSRPmpcfg0, Forms: asm.FormsAll},
	asm.GenCSR{CSR: rv.CSRPmpaddr0 + 5, Forms: asm.FormsAll},
)

// SBCase is one superblock-equivalence input.
type SBCase struct {
	Profile  string
	Sched    hart.SchedKind
	Quantum  uint64
	Timer    bool   // program mtimecmp so the comparator crosses mid-run
	Mtimecmp uint64 // comparator value when Timer is set
	SMC      bool   // one base register points into the program window
	Prog     []uint32
	Init     schedHartInit
}

func (tc *SBCase) String() string {
	return fmt.Sprintf("sbcase{%s, sched=%v, quantum=%d, timer=%v, smc=%v}",
		tc.Profile, tc.Sched, tc.Quantum, tc.Timer, tc.SMC)
}

// SBMismatch is one tier divergence.
type SBMismatch struct {
	Case *SBCase
	Desc string
}

func (m *SBMismatch) String() string { return m.Desc + " in " + m.Case.String() }

// SBEquivStats summarizes a superblock-equivalence run.
type SBEquivStats struct {
	Cases      int
	Steps      int // interpreter machine steps across all cases
	SBRetired  uint64
	Mismatches []*SBMismatch
}

// sbTrio is one profile's machine trio, reused across cases through full
// machine resets. All three are single-hart so the sequential scheduler's
// superblock arming is eligible.
type sbTrio struct {
	profile string
	// interp: fast path off. fast: fast path on, superblocks off.
	// full: the whole stack. interp is the architectural oracle; fast
	// isolates superblock bugs from fast-path bugs.
	interp, fast, full *hart.Machine
	genCfg             asm.GenCfg
	progZero, scrZero  []byte
}

func newSBTrio(profile string) (*sbTrio, error) {
	mk, ok := hart.Profiles()[profile]
	if !ok {
		return nil, fmt.Errorf("fuzz: unknown profile %q", profile)
	}
	t := &sbTrio{
		profile:  profile,
		progZero: make([]byte, ProgCap),
		scrZero:  make([]byte, ScratchSize),
		genCfg: asm.GenCfg{
			Slots:      Slots,
			DataRegs:   []int{10, 11, 12, 13, 14, 15},
			BaseRegs:   []int{16, 17, 18},
			BaseWindow: 2048,
			CSRs:       sbGenCSRs,
		},
	}
	for _, dst := range []**hart.Machine{&t.interp, &t.fast, &t.full} {
		cfg := mk()
		cfg.Harts = 1
		m, err := hart.NewMachine(cfg, core.DramSize)
		if err != nil {
			return nil, err
		}
		*dst = m
	}
	t.interp.SetFastPath(false)
	t.interp.SetSuperblock(false)
	t.fast.SetFastPath(true)
	t.fast.SetSuperblock(false)
	t.full.SetFastPath(true)
	t.full.SetSuperblock(true)
	return t, nil
}

// genSBCase draws one case.
func (t *sbTrio) genSBCase(rng *rand.Rand, sched hart.SchedKind, quantum uint64) *SBCase {
	tc := &SBCase{
		Profile: t.profile,
		Sched:   sched,
		Quantum: quantum,
		Prog:    asm.Generate(rng, &t.genCfg),
	}
	in := &tc.Init
	for r := 1; r < 32; r++ {
		in.Regs[r] = randValue(rng)
	}
	for _, r := range t.genCfg.BaseRegs {
		base := ScratchBase + uint64(rng.Intn(ScratchSize-4096))&^7
		if rng.Intn(6) == 0 {
			base |= uint64(rng.Intn(8))
		}
		in.Regs[r] = base
	}
	if rng.Intn(3) == 0 {
		// Self-modifying-code case: the last base register points into the
		// program window, so generated stores overwrite live code that may
		// already be translated into a block.
		tc.SMC = true
		last := t.genCfg.BaseRegs[len(t.genCfg.BaseRegs)-1]
		in.Regs[last] = ProgBase + uint64(rng.Intn(ProgCap-2048))&^7
	}
	slot := func() uint64 { return ProgBase + uint64(4*rng.Intn(Slots)) }
	in.Mtvec = slot() | uint64(rng.Intn(2))
	in.Stvec = slot() | uint64(rng.Intn(2))
	in.Mepc, in.Sepc = slot(), slot()
	in.Mstatus = rng.Uint64()&(uint64(1)<<1|1<<3|1<<5|1<<7|1<<8) |
		[]uint64{0, 1, 3}[rng.Intn(3)]<<11
	in.Mie = rng.Uint64() & 0xAAA
	in.Medeleg = rng.Uint64() & 0xB3FF
	in.Mscratch, in.Sscratch = rng.Uint64(), rng.Uint64()
	in.Mcause, in.Scause = rng.Uint64(), rng.Uint64()
	in.Mtval, in.Stval = rng.Uint64(), rng.Uint64()
	if rng.Intn(2) == 0 {
		// Timer case: the comparator crosses somewhere inside the run, so
		// MTIP flips (and, when enabled, the interrupt preempts) mid-way.
		// A block must never retire past the crossing the interpreter
		// would have seen at its per-step latch.
		tc.Timer = true
		tc.Mtimecmp = uint64(rng.Intn(48))
	}
	return tc
}

// install writes the case onto a machine: full reset, program and scratch
// images, starting state, and the same locked-PMP confinement the
// scheduler-equivalence mode uses (program and scratch windows granted,
// locked deny-all underneath).
func (t *sbTrio) install(m *hart.Machine, tc *SBCase) {
	m.Reset(ProgBase)
	m.Sched = tc.Sched
	m.Quantum = tc.Quantum
	prog := make([]byte, 4*len(tc.Prog))
	for j, w := range tc.Prog {
		binary.LittleEndian.PutUint32(prog[4*j:], w)
	}
	m.LoadImage(ProgBase, t.progZero)
	m.LoadImage(ScratchBase, t.scrZero)
	m.LoadImage(ProgBase, prog)

	h := m.Harts[0]
	in := &tc.Init
	h.Regs = in.Regs
	h.Regs[0] = 0
	h.PC = ProgBase
	h.Mode = rv.ModeM
	c := &h.CSR
	c.WriteMstatus(in.Mstatus)
	c.Mie = in.Mie
	c.Medeleg = in.Medeleg
	c.Mtvec, c.Stvec = in.Mtvec, in.Stvec
	c.Mepc, c.Sepc = in.Mepc, in.Sepc
	c.Mscratch, c.Sscratch = in.Mscratch, in.Sscratch
	c.Mcause, c.Scause = in.Mcause, in.Scause
	c.Mtval, c.Stval = in.Mtval, in.Stval

	f := c.PMP
	rwxNapot := uint8(pmp.CfgL | pmp.CfgR | pmp.CfgW | pmp.CfgX | pmp.ANapot<<3)
	f.ForceAddr(0, napotAddr(ProgBase, ProgCap))
	f.ForceCfg(0, rwxNapot)
	f.ForceAddr(1, napotAddr(ScratchBase, ScratchSize))
	f.ForceCfg(1, rwxNapot)
	f.ForceAddr(2, rv.Mask(54))
	f.ForceCfg(2, pmp.CfgL|pmp.ANapot<<3)

	if tc.Timer {
		m.Clint.SetMtimecmp(0, tc.Mtimecmp)
	}
}

// runSBCase executes one installed machine for the case's budget under the
// case's scheduler.
func runSBCase(m *hart.Machine, tc *SBCase) {
	if tc.Sched == hart.SchedPar {
		m.RunParBudget(sbStepBudget)
	} else {
		m.Run(sbStepBudget)
	}
}

// sbCompare checks every observable of a finished machine pair and returns
// a description of the first divergence, or "". want is the oracle.
func sbCompare(label string, want, got *hart.Machine) string {
	wh, wr := want.Halted()
	gh, gr := got.Halted()
	if wh != gh || wr != gr {
		return fmt.Sprintf("%s machine halt: want=%v/%q got=%v/%q", label, wh, wr, gh, gr)
	}
	hW, hG := want.Harts[0], got.Harts[0]
	if hW.Cycles != hG.Cycles {
		return fmt.Sprintf("%s cycles: want=%d got=%d", label, hW.Cycles, hG.Cycles)
	}
	if hW.Instret != hG.Instret || hW.SInstret != hG.SInstret {
		return fmt.Sprintf("%s instret: want=%d/%d got=%d/%d",
			label, hW.Instret, hW.SInstret, hG.Instret, hG.SInstret)
	}
	if hW.PC != hG.PC || hW.Mode != hG.Mode || hW.Waiting != hG.Waiting ||
		hW.Halted != hG.Halted {
		return fmt.Sprintf("%s pc/mode/wfi/halt: want=%#x/%v/%v/%v got=%#x/%v/%v/%v",
			label, hW.PC, hW.Mode, hW.Waiting, hW.Halted,
			hG.PC, hG.Mode, hG.Waiting, hG.Halted)
	}
	if hW.Regs != hG.Regs {
		for r := 0; r < 32; r++ {
			if hW.Regs[r] != hG.Regs[r] {
				return fmt.Sprintf("%s x%d: want=%#x got=%#x", label, r, hW.Regs[r], hG.Regs[r])
			}
		}
	}
	if d := csrDelta(&hW.CSR, &hG.CSR); d != "" {
		return fmt.Sprintf("%s %s", label, d)
	}
	for _, r := range [][2]uint64{{ProgBase, ProgCap}, {ScratchBase, ScratchSize}} {
		bW, err1 := want.Bus.ReadBytes(r[0], int(r[1]))
		bG, err2 := got.Bus.ReadBytes(r[0], int(r[1]))
		if err1 != nil || err2 != nil || !bytes.Equal(bW, bG) {
			return fmt.Sprintf("%s memory at %#x differs", label, r[0])
		}
	}
	return ""
}

// RunSuperblockEquivalence fuzzes `cases` superblock-equivalence cases per
// profile. Every case runs the identical initial state on the interpreter,
// on the fast path without superblocks, and on the full stack, under the
// same scheduler, and compares the three end states bit for bit.
func RunSuperblockEquivalence(profiles []string, seed int64, cases int) (*SBEquivStats, error) {
	var trios []*sbTrio
	for _, prof := range profiles {
		t, err := newSBTrio(prof)
		if err != nil {
			return nil, err
		}
		trios = append(trios, t)
	}
	rng := rand.New(rand.NewSource(seed))
	st := &SBEquivStats{}
	for c := 0; c < cases*len(profiles); c++ {
		t := trios[c%len(trios)]
		sched := hart.SchedSeq
		if c%2 == 1 {
			sched = hart.SchedPar
		}
		tc := t.genSBCase(rng, sched, schedQuanta[c%len(schedQuanta)])

		t.install(t.interp, tc)
		runSBCase(t.interp, tc)
		t.install(t.fast, tc)
		runSBCase(t.fast, tc)
		t.install(t.full, tc)
		runSBCase(t.full, tc)

		st.Cases++
		st.Steps += int(t.interp.Harts[0].Instret)

		desc := sbCompare("full-vs-interp", t.interp, t.full)
		if desc == "" {
			desc = sbCompare("full-vs-fast", t.fast, t.full)
		}
		if desc != "" {
			st.Mismatches = append(st.Mismatches, &SBMismatch{Case: tc, Desc: desc})
			if len(st.Mismatches) >= 10 {
				break
			}
		}
	}
	// Perf counters survive Machine.Reset, so each trio's final counter is
	// already the total across all of its cases.
	for _, t := range trios {
		st.SBRetired += t.full.Harts[0].Perf.SBRetired
	}
	return st, nil
}
