// Package fuzz is the differential lockstep fuzzer (the dynamic complement
// to internal/verif's exhaustive checks, playing the role random testing
// plays alongside Kani in the paper's methodology, §6): randomized RV64
// programs and machine states are executed instruction-by-instruction on
// two simulated harts — a native one running bare (no monitor) and one
// virtualized under the monitor — while an independently-written reference
// model shadows both. After every retired instruction the three
// derivations of the privileged specification are compared field by field;
// any mismatch is a finding, automatically minimized and emitted as a
// self-contained reproducer.
//
// The generator is constrained so that the native and virtualized machines
// follow path-coincident executions (same instruction stream, same memory
// image): CSRs whose existence or width legitimately differs between the
// two (PMP entries past the virtual count, counter writes) are excluded or
// restricted to forms whose reachable values coincide. The constraints are
// documented inline; the per-step native-vs-virtualized diff doubles as a
// check that no constraint hole lets the paths drift silently.
package fuzz

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"govfm/internal/core"
	"govfm/internal/pmp"
	"govfm/internal/refmodel"
	"govfm/internal/rv"
)

const (
	// ProgBase is where generated programs are loaded — the virtual
	// firmware's entry region, so the monitor treats it as vM text.
	ProgBase = core.FirmwareBase
	// ProgCap is the wiped program window; fetches beyond the generated
	// slots hit zero words (illegal instructions) symmetrically.
	ProgCap = 0x2000
	// ScratchBase/ScratchSize bound the data window load/store base
	// registers point into.
	ScratchBase = core.OSBase
	ScratchSize = 0x1_0000

	// Slots is the program length; branch targets stay on slot boundaries.
	Slots = 48
	// StepBudget bounds lockstep steps per test case.
	StepBudget = 256
)

// TestCase is one fuzz input: a platform profile, an instruction stream,
// and a starting architectural state. It serializes to JSON for corpus
// storage and reproducers.
type TestCase struct {
	Profile string          `json:"profile"`
	Prog    []uint32        `json:"prog"`
	State   *refmodel.State `json:"state"`
}

// Marshal renders the case as indented JSON.
func (tc *TestCase) Marshal() ([]byte, error) {
	return json.MarshalIndent(tc, "", " ")
}

// Clone deep-copies the case.
func (tc *TestCase) Clone() *TestCase {
	t := &TestCase{Profile: tc.Profile, Prog: append([]uint32(nil), tc.Prog...)}
	if tc.State != nil {
		t.State = tc.State.Clone()
	}
	return t
}

func legalizeTvec(v uint64) uint64 {
	mode := v & 3
	if mode > 1 {
		mode = 0
	}
	return v&^3 | mode
}

// hstatusWritable is the set of hstatus fields the platform implements
// (GVA, SPV, SPVP, HU, VTVM, VTW, VTSR); VSXL is fixed at 64-bit.
const hstatusWritable = uint64(1)<<6 | 1<<7 | 1<<8 | 1<<9 | 1<<20 | 1<<21 | 1<<22

// canonicalize legalizes a test-case state in place so that it is exactly
// representable on all three derivations (native CSR file, virtual CSR
// shadow, reference state): every WARL mask is applied, fields absent from
// the platform are zeroed, and the PMP file is passed through the
// simulator's own legalizer. Install routines then copy the values
// verbatim, guaranteeing the shadows start bit-identical to the machines.
// Mutated and hand-edited cases (minimization, JSON repros) pass through
// here before every run.
func (e *Engine) canonicalize(tc *TestCase) {
	if tc.State == nil {
		tc.State = refmodel.NewState()
	}
	if len(tc.Prog) > ProgCap/4 {
		tc.Prog = tc.Prog[:ProgCap/4]
	}
	s := tc.State
	cfg := e.VirtCfg

	s.Regs[0] = 0
	switch s.Priv {
	case refmodel.U, refmodel.S, refmodel.M:
	default:
		s.Priv = refmodel.M
	}
	// Start inside the program window, 4-aligned.
	if s.PC < ProgBase || s.PC >= ProgBase+uint64(4*Slots) {
		s.PC = ProgBase + s.PC%(4*Slots)
	}
	s.PC &^= 3

	s.Status = refmodel.MstatusFromBits(s.Status.Bits())
	// mstatus.MPRV set below M-mode is architecturally unreachable (mret
	// and sret clear it on return to a lower privilege), and the monitor
	// is only required to be faithful on reachable states.
	if s.Priv != refmodel.M {
		s.Status.MPRV = false
	}

	s.Medeleg &= 0xB3FF
	s.Mideleg = 0x222 // forced delegation, matching the virtual hardware
	if cfg.HasH {
		s.Medeleg &= 0xB3FF | 1<<10 | 1<<20 | 1<<21 | 1<<22 | 1<<23
		s.Mideleg |= rv.VSIntMask // VS interrupts are hardwired-delegated
	}
	s.Mie &= 0xAAA
	// Only SSIP is generator-reachable (immediate CSR forms); richer
	// pending sets would need interrupt wiring the two machines don't
	// share.
	s.MipSW &= 1 << rv.IntSSoft
	s.MipHW = 0

	s.Mtvec = legalizeTvec(s.Mtvec)
	s.Stvec = legalizeTvec(s.Stvec)
	s.Mepc &^= 3
	s.Sepc &^= 3
	s.Mcounteren &= 0xFFFF_FFFF
	s.Scounteren &= 0xFFFF_FFFF
	// menvcfg is pinned to zero: the Sstc enable bit would make STIP a
	// function of the free-running clock, which the two machines do not
	// share.
	s.Menvcfg = 0
	s.Senvcfg &= 1
	s.Mseccfg &= 7
	s.Mcountinhibit &= 0xFFFF_FFFD
	// satp mode is pinned to Bare (translation off): the remaining bits
	// are storable data on every side.
	s.Satp &^= uint64(0xF) << 60
	if !cfg.HasSstc {
		s.Stimecmp = 0
	}
	s.Time, s.Cycle, s.Instret = 0, 0, 0
	s.WFI = false

	if cfg.HasH {
		// Mirror every hypervisor WARL mask so install routines can copy
		// the values verbatim into all three derivations.
		s.Hstatus = s.Hstatus&hstatusWritable | uint64(2)<<32
		s.Hedeleg &= 0xB1FF
		s.Hideleg &= rv.VSIntMask
		s.Hie &= rv.VSIntMask
		s.Hvip &= rv.VSIntMask
		s.Hcounteren &= 0xFFFF_FFFF
		// G-stage and VS-stage translation are pinned to Bare, exactly as
		// satp is: the remaining bits are storable data on every side.
		s.Hgatp &^= uint64(0xF)<<60 | uint64(3)<<58 | 3
		s.Vsatp &^= uint64(0xF) << 60
		s.Vsstatus = s.Vsstatus & (uint64(1)<<1 | 1<<5 | 1<<8 | 1<<18 | 1<<19)
		s.Vsstatus |= uint64(2) << 32
		s.Vstvec = legalizeTvec(s.Vstvec)
		s.Vsepc &^= 3
		if s.Priv == refmodel.M {
			s.V = false
		}
	} else {
		s.Hstatus, s.Hedeleg, s.Hideleg, s.Hie, s.Hcounteren, s.Hgeie = 0, 0, 0, 0, 0, 0
		s.Htval, s.Hip, s.Hvip, s.Htinst, s.Hgatp, s.Henvcfg = 0, 0, 0, 0, 0, 0
		s.Vsstatus, s.Vsie, s.Vstvec, s.Vsscratch = 0, 0, 0, 0
		s.Vsepc, s.Vscause, s.Vstval, s.Vsip, s.Vsatp = 0, 0, 0, 0, 0
		s.Mtinst, s.Mtval2 = 0, 0
		s.Status.MPV, s.Status.GVA = false, false
		s.V = false
	}

	custom := make(map[uint16]uint64, len(cfg.CustomCSRs))
	for _, n := range cfg.CustomCSRs {
		custom[n] = s.Custom[n]
	}
	s.Custom = custom

	// Pass the PMP image through the simulator's own legalizer so stored
	// cfg bytes are exactly what a write would leave behind. Entries past
	// the virtual count do not exist on the virtualized machine and are
	// kept OFF on the native one.
	f := pmp.NewFile(cfg.PMPCount)
	for i := 0; i < cfg.PMPCount; i++ {
		f.ForceAddr(i, s.PmpAddr[i])
		f.ForceCfg(i, s.PmpCfg[i])
	}
	for i := range s.PmpCfg {
		if i < cfg.PMPCount {
			s.PmpCfg[i] = f.Cfg(i)
			s.PmpAddr[i] = f.Addr(i)
		} else {
			s.PmpCfg[i] = 0
			s.PmpAddr[i] = 0
		}
	}
}

// randValue draws an interesting 64-bit value: small integers, scratch
// pointers, aligned addresses, or full-width noise.
func randValue(rng *rand.Rand) uint64 {
	switch rng.Intn(8) {
	case 0:
		return uint64(rng.Intn(16))
	case 1:
		return ^uint64(0) - uint64(rng.Intn(8))
	case 2, 3:
		return ScratchBase + uint64(rng.Intn(ScratchSize-4096))&^7
	case 4:
		return ProgBase + uint64(4*rng.Intn(Slots))
	default:
		return rng.Uint64()
	}
}

// progSlot picks a program address on a slot boundary.
func progSlot(rng *rand.Rand) uint64 { return ProgBase + uint64(4*rng.Intn(Slots)) }

// GenCase produces a fresh random test case for this engine's profile.
func (e *Engine) GenCase(rng *rand.Rand) *TestCase {
	cfg := e.VirtCfg
	s := refmodel.NewState()

	for i := 1; i < 32; i++ {
		s.Regs[i] = randValue(rng)
	}
	// Base registers hold scratch pointers (the generator confines memory
	// operands to them); keep a margin for the 12-bit offsets, and leave
	// some bases misaligned to exercise the misaligned-access paths.
	for _, r := range e.GenCfg.BaseRegs {
		base := ScratchBase + uint64(rng.Intn(ScratchSize-4096))&^7
		if rng.Intn(6) == 0 {
			base |= uint64(rng.Intn(8))
		}
		s.Regs[r] = base
	}

	s.Priv = []uint8{refmodel.M, refmodel.M, refmodel.M, refmodel.S, refmodel.U}[rng.Intn(5)]
	if cfg.HasH && s.Priv != refmodel.M && rng.Intn(2) == 0 {
		s.V = true // start as a guest (VS or VU)
	}
	s.PC = ProgBase
	if rng.Intn(4) == 0 {
		s.PC = progSlot(rng)
	}

	mst := rng.Uint64() & (uint64(1)<<1 | 1<<3 | 1<<5 | 1<<7 | 1<<8 |
		1<<17 | 1<<18 | 1<<19 | 1<<20 | 1<<21 | 1<<22)
	mst |= []uint64{0, 1, 3}[rng.Intn(3)] << 11
	s.Status = refmodel.MstatusFromBits(mst)

	s.Medeleg = rng.Uint64()
	s.Mie = rng.Uint64()
	if rng.Intn(5) == 0 {
		s.MipSW = 1 << rv.IntSSoft
	}

	// Trap vectors and return addresses are biased into the program so
	// traps and xRET keep executing generated code.
	tvec := func() uint64 {
		if rng.Intn(5) != 0 {
			return progSlot(rng) | uint64(rng.Intn(2))
		}
		return rng.Uint64()
	}
	epc := func() uint64 {
		if rng.Intn(4) != 0 {
			return progSlot(rng)
		}
		return rng.Uint64()
	}
	s.Mtvec, s.Stvec = tvec(), tvec()
	s.Mepc, s.Sepc = epc(), epc()
	s.Mcause, s.Scause = rng.Uint64(), rng.Uint64()
	s.Mtval, s.Stval = rng.Uint64(), rng.Uint64()
	s.Mscratch, s.Sscratch = rng.Uint64(), rng.Uint64()
	s.Mcounteren, s.Scounteren = rng.Uint64(), rng.Uint64()
	s.Senvcfg = rng.Uint64()
	s.Mseccfg = rng.Uint64()
	s.Mcountinhibit = rng.Uint64()
	if rng.Intn(2) == 0 {
		s.Satp = rng.Uint64()
	}
	if cfg.HasSstc {
		s.Stimecmp = rng.Uint64()
	}
	if cfg.HasH {
		s.Hstatus, s.Hedeleg, s.Hideleg = rng.Uint64(), rng.Uint64(), rng.Uint64()
		s.Hie, s.Hcounteren, s.Hgeie = rng.Uint64(), rng.Uint64(), rng.Uint64()
		s.Htval, s.Hip, s.Hvip = rng.Uint64(), rng.Uint64(), rng.Uint64()
		s.Htinst, s.Hgatp, s.Henvcfg = rng.Uint64(), rng.Uint64(), rng.Uint64()
		s.Vsstatus, s.Vsie, s.Vstvec = rng.Uint64(), rng.Uint64(), rng.Uint64()
		s.Vsscratch, s.Vsepc, s.Vscause = rng.Uint64(), rng.Uint64(), rng.Uint64()
		s.Vstval, s.Vsip, s.Vsatp = rng.Uint64(), rng.Uint64(), rng.Uint64()
		s.Mtinst, s.Mtval2 = rng.Uint64(), rng.Uint64()
	}
	for _, n := range cfg.CustomCSRs {
		s.Custom[n] = rng.Uint64()
	}

	if e.HextBias && cfg.HasH {
		// Hypervisor-focused campaigns start mostly as guests, with vM kept
		// in the mix so H-CSR programming and world switches still occur.
		s.Priv = []uint8{refmodel.M, refmodel.S, refmodel.S, refmodel.S, refmodel.U}[rng.Intn(5)]
		s.V = s.Priv != refmodel.M && rng.Intn(4) != 0
		// Dense delegation masks make VS-level trap entry and virtual
		// interrupts reachable; guest vectors biased into the program keep
		// trapped guests executing generated code.
		s.Hedeleg |= rng.Uint64() & rng.Uint64()
		s.Hideleg |= rng.Uint64()
		s.Hie |= rng.Uint64()
		s.Hvip |= rng.Uint64() & rng.Uint64()
		s.Vstvec, s.Vsepc = tvec(), epc()
		if rng.Intn(2) == 0 {
			s.Hstatus |= 1 << 7 // SPV: guest-bound sret from HS
		}
	}

	// PMP: most entries biased toward the scratch window so memory
	// operations actually interact with them; the last virtual entry is
	// usually a NAPOT allow-all so sub-M execution is not starved (with
	// any entry implemented, a no-match access below M is denied).
	n := cfg.PMPCount
	for i := 0; i < n; i++ {
		var addr uint64
		switch rng.Intn(5) {
		case 0:
			addr = rng.Uint64()
		case 1:
			addr = (ProgBase + uint64(4*rng.Intn(Slots))) >> 2
		default:
			addr = (ScratchBase + uint64(rng.Intn(ScratchSize))) >> 2
			addr |= uint64(rng.Intn(64)) // NAPOT size bits
		}
		c := uint8(rng.Intn(256))
		if rng.Intn(8) != 0 {
			c &^= pmp.CfgL
		}
		s.PmpAddr[i], s.PmpCfg[i] = addr, c
	}
	if rng.Intn(8) != 0 {
		s.PmpAddr[n-1] = rv.Mask(54)
		s.PmpCfg[n-1] = pmp.CfgR | pmp.CfgW | pmp.CfgX | pmp.ANapot<<3
	}

	tc := &TestCase{
		Profile: e.Profile,
		Prog:    e.genProg(rng),
		State:   s,
	}
	e.canonicalize(tc)
	return tc
}

// Mutate derives a new case from parents in the engine's corpus style:
// rewrite a few instruction slots, splice a slot range from a second
// parent, or re-roll part of the state.
func (e *Engine) Mutate(rng *rand.Rand, parent, other *TestCase) *TestCase {
	tc := parent.Clone()
	switch rng.Intn(4) {
	case 0: // rewrite random slots
		k := 1 + rng.Intn(6)
		for j := 0; j < k; j++ {
			slot := rng.Intn(len(tc.Prog))
			tc.Prog[slot] = e.genOne(rng, slot)
		}
	case 1: // splice a slot range from another corpus entry
		if other != nil && len(other.Prog) == len(tc.Prog) {
			lo := rng.Intn(len(tc.Prog))
			hi := lo + 1 + rng.Intn(len(tc.Prog)-lo)
			copy(tc.Prog[lo:hi], other.Prog[lo:hi])
			break
		}
		fallthrough
	case 2: // perturb the state
		fresh := e.GenCase(rng).State
		s := tc.State
		for j := 1 + rng.Intn(3); j > 0; j-- {
			switch rng.Intn(10) {
			case 0:
				i := 1 + rng.Intn(31)
				s.Regs[i] = fresh.Regs[i]
			case 1:
				s.Status = fresh.Status
				s.Priv = fresh.Priv
			case 2:
				s.Mie, s.Medeleg = fresh.Mie, fresh.Medeleg
			case 3:
				s.Mtvec, s.Stvec = fresh.Mtvec, fresh.Stvec
			case 4:
				s.Mepc, s.Sepc = fresh.Mepc, fresh.Sepc
			case 5:
				i := rng.Intn(e.VirtCfg.PMPCount)
				s.PmpCfg[i], s.PmpAddr[i] = fresh.PmpCfg[i], fresh.PmpAddr[i]
			case 6:
				s.MipSW = fresh.MipSW
			case 7:
				s.Satp, s.Mseccfg = fresh.Satp, fresh.Mseccfg
			case 8:
				s.Mcounteren, s.Scounteren = fresh.Mcounteren, fresh.Scounteren
			default:
				s.PC = fresh.PC
			}
		}
	default: // fresh program over the same state
		tc.Prog = e.genProg(rng)
	}
	e.canonicalize(tc)
	return tc
}

func (tc *TestCase) String() string {
	return fmt.Sprintf("case{%s, %d slots, priv=%d, pc=%#x}",
		tc.Profile, len(tc.Prog), tc.State.Priv, tc.State.PC)
}
