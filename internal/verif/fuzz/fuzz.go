package fuzz

import (
	"fmt"
	"math/rand"
)

// Fuzzer drives coverage-guided differential fuzzing across one or more
// platform profiles, round-robin. Coverage keys come from monitor events
// (emulated instruction encodings, virtual trap causes, world switches)
// and native trap causes; a case contributing a new key joins the corpus.
type Fuzzer struct {
	Engines []*Engine
	rng     *rand.Rand
	Seed    int64

	coverage map[uint64]struct{}
	corpus   [][]*TestCase // per engine

	// Stats.
	Cases      int
	GuestCases int // cases whose starting state had V=1
	Steps      int
	Findings   []*Finding
}

// corpusCap bounds the per-profile corpus; beyond it new entries replace
// random old ones.
const corpusCap = 256

// NewFuzzer builds engines for the given profile names.
func NewFuzzer(profiles []string, seed int64) (*Fuzzer, error) {
	f := &Fuzzer{
		Seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		coverage: map[uint64]struct{}{},
	}
	for _, p := range profiles {
		e, err := NewEngine(p)
		if err != nil {
			return nil, err
		}
		f.Engines = append(f.Engines, e)
		f.corpus = append(f.corpus, nil)
	}
	if len(f.Engines) == 0 {
		return nil, fmt.Errorf("fuzz: no profiles")
	}
	return f, nil
}

// nextCase picks a fresh or mutated case for engine i.
func (f *Fuzzer) nextCase(i int) *TestCase {
	e := f.Engines[i]
	c := f.corpus[i]
	if len(c) == 0 || f.rng.Intn(3) == 0 {
		return e.GenCase(f.rng)
	}
	parent := c[f.rng.Intn(len(c))]
	var other *TestCase
	if len(c) > 1 {
		other = c[f.rng.Intn(len(c))]
	}
	return e.Mutate(f.rng, parent, other)
}

// runOne executes a case on engine i, recording coverage and corpus
// growth. It returns the finding, if any (not yet minimized).
func (f *Fuzzer) runOne(i int, tc *TestCase) *Finding {
	e := f.Engines[i]
	newKeys := 0
	e.Cov = func(key uint64) {
		if _, ok := f.coverage[key]; !ok {
			f.coverage[key] = struct{}{}
			newKeys++
		}
	}
	finding, steps := e.Run(tc)
	e.Cov = nil
	f.Cases++
	if tc.State != nil && tc.State.V {
		f.GuestCases++
	}
	f.Steps += steps
	if finding != nil {
		f.Findings = append(f.Findings, finding)
		return finding
	}
	if newKeys > 0 {
		if len(f.corpus[i]) < corpusCap {
			f.corpus[i] = append(f.corpus[i], tc)
		} else {
			f.corpus[i][f.rng.Intn(corpusCap)] = tc
		}
	}
	return nil
}

// RunBudget fuzzes until the total lockstep step count reaches budget,
// alternating engines. Findings are minimized before being returned; the
// fuzzer keeps going after a finding (up to maxFindings) so one bug does
// not mask others.
func (f *Fuzzer) RunBudget(budget int, maxFindings int) []*Finding {
	var minimized []*Finding
	for i := 0; f.Steps < budget; i = (i + 1) % len(f.Engines) {
		tc := f.nextCase(i)
		if fd := f.runOne(i, tc); fd != nil {
			minimized = append(minimized, Minimize(f.Engines[i], fd))
			if maxFindings > 0 && len(minimized) >= maxFindings {
				break
			}
		}
	}
	return minimized
}

// RunCases fuzzes until the total case count reaches n, alternating
// engines; otherwise identical to RunBudget. Case-denominated gates (the
// -hext CI gate promises a minimum case count) use this instead of a step
// budget.
func (f *Fuzzer) RunCases(n int, maxFindings int) []*Finding {
	var minimized []*Finding
	for i := 0; f.Cases < n; i = (i + 1) % len(f.Engines) {
		tc := f.nextCase(i)
		if fd := f.runOne(i, tc); fd != nil {
			minimized = append(minimized, Minimize(f.Engines[i], fd))
			if maxFindings > 0 && len(minimized) >= maxFindings {
				break
			}
		}
	}
	return minimized
}

// Coverage returns the number of distinct coverage keys observed.
func (f *Fuzzer) Coverage() int { return len(f.coverage) }

// CorpusSize returns the corpus size for engine i.
func (f *Fuzzer) CorpusSize(i int) int { return len(f.corpus[i]) }
