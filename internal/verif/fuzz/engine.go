package fuzz

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"

	"govfm/internal/asm"
	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/refmodel"
	"govfm/internal/rv"
)

// Finding is one divergence between the three derivations of the
// specification (native machine, virtualized machine, reference model).
type Finding struct {
	Case   *TestCase
	Step   int    // lockstep steps completed when the divergence appeared
	Where  string // which pair diverged
	Word   uint32 // instruction word fetched at the diverging step
	Deltas []refmodel.Delta
}

func (f *Finding) String() string {
	s := fmt.Sprintf("%s at step %d (word %#08x) in %s", f.Where, f.Step, f.Word, f.Case)
	for _, d := range f.Deltas {
		s += "\n  " + d.String()
	}
	return s
}

// Divergence pair labels.
const (
	WhereNativeModel = "native-vs-model"
	WhereVirtModel   = "virt-vs-model"
	WhereNativeVirt  = "native-vs-virt"
	WhereMemory      = "memory"
	WhereMonitorHalt = "monitor-halt"
	WhereHalt        = "halt-mismatch"
	WhereInterrupt   = "unexpected-interrupt"
)

// Engine runs test cases in lockstep on one platform profile. It owns two
// machines — Native executes bare (the hart's own M/S/U implementation is
// the firmware), Virt runs the same state as virtual firmware under the
// monitor — plus two reference-model shadows advanced per step.
type Engine struct {
	Profile string

	Native *hart.Machine
	Virt   *hart.Machine
	Mon    *core.Monitor
	Ctx    *core.HartCtx

	// PhysCfg describes the native hart to the reference model; VirtCfg
	// describes the virtual hart (fewer PMP entries, forced mideleg).
	PhysCfg *refmodel.Config
	VirtCfg *refmodel.Config

	GenCfg *asm.GenCfg

	// HextBias, on H-capable profiles, skews GenCase toward the hypervisor
	// surface: guest (V=1) starting states, rich hedeleg/hvip delegation,
	// and guest trap vectors that land back inside the program.
	HextBias bool

	// Cov, when set, receives coverage keys derived from monitor and trap
	// events; the fuzzer uses new keys as its corpus signal.
	Cov func(key uint64)

	natBase  *hart.MachineSnapshot
	virtBase *hart.MachineSnapshot
	natTrap  *hart.TrapInfo

	progZero    []byte
	scratchZero []byte
}

// NewEngine builds the paired machines for a profile name from
// hart.Profiles (the cmd/fuzzdiff alias "vf2" is resolved by the caller).
func NewEngine(profile string) (*Engine, error) {
	mk, ok := hart.Profiles()[profile]
	if !ok {
		return nil, fmt.Errorf("fuzz: unknown profile %q", profile)
	}
	cfgN, cfgV := mk(), mk()
	// One hart per machine: the differential harness is single-hart, and
	// idle siblings would only burn steps.
	cfgN.Harts, cfgV.Harts = 1, 1

	native, err := hart.NewMachine(cfgN, core.DramSize)
	if err != nil {
		return nil, err
	}
	virt, err := hart.NewMachine(cfgV, core.DramSize)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		Profile:     profile,
		Native:      native,
		Virt:        virt,
		progZero:    make([]byte, ProgCap),
		scratchZero: make([]byte, ScratchSize),
	}

	mon, err := core.Attach(virt, core.Options{
		FirmwareEntry: ProgBase,
		OnEmulate: func(c *core.HartCtx, raw uint32) {
			e.emit(1<<56 | uint64(raw&0xFFF0707F))
		},
		OnVirtTrap: func(c *core.HartCtx, cause, tval uint64) {
			e.emit(2<<56 | foldCause(cause)<<8 | uint64(c.VirtMode))
		},
		OnWorldSwitch: func(c *core.HartCtx, to core.World) {
			e.emit(3<<56 | uint64(to))
		},
	})
	if err != nil {
		return nil, err
	}
	e.Mon = mon
	e.Ctx = mon.Ctx[0]

	e.PhysCfg = refCfg(cfgN, cfgN.NumPMP, false)
	e.VirtCfg = refCfg(cfgN, mon.NumVirtPMP(), true)
	e.GenCfg = &asm.GenCfg{
		Slots:      Slots,
		DataRegs:   []int{10, 11, 12, 13, 14, 15},
		BaseRegs:   []int{16, 17, 18},
		BaseWindow: 2048,
		CSRs:       csrSpecs(e.VirtCfg),
		HFence:     e.VirtCfg.HasH,
	}

	e.SetFastPath(DefaultFastPath)

	// Baselines. The CLINT comparator resets to zero, which asserts MTIP
	// immediately; silence it so the native machine sees no machine-timer
	// interrupt (interrupt delivery timing is inherently asymmetric and is
	// excluded from lockstep — see Run).
	native.Reset(ProgBase)
	native.Clint.SetMtimecmp(0, ^uint64(0))
	e.natBase = native.Checkpoint()
	native.Harts[0].OnTrap = func(ti hart.TrapInfo) {
		t := ti
		e.natTrap = &t
		e.emit(4<<56 | foldCause(ti.Cause)<<8 | uint64(ti.FromMode))
	}

	mon.Boot()
	e.virtBase = virt.Checkpoint()
	return e, nil
}

func (e *Engine) emit(key uint64) {
	if e.Cov != nil {
		e.Cov(key)
	}
}

// foldCause compresses an mcause value into a small coverage field.
func foldCause(cause uint64) uint64 {
	c := rv.CauseCode(cause) & 0x3F
	if rv.CauseIsInterrupt(cause) {
		c |= 0x40
	}
	return c
}

// refCfg derives a reference-model configuration from a hart profile.
func refCfg(cfg *hart.Config, pmpCount int, midelegForced bool) *refmodel.Config {
	return &refmodel.Config{
		PMPCount:      pmpCount,
		HasSstc:       cfg.HasSstc,
		HasTimeCSR:    cfg.HasTimeCSR,
		HasH:          cfg.HasH,
		MidelegForced: midelegForced,
		CustomCSRs:    append([]uint16(nil), cfg.CustomCSRs...),
		Mvendorid:     cfg.Mvendorid,
		Marchid:       cfg.Marchid,
		Mimpid:        cfg.Mimpid,
	}
}

// csrSpecs lists the CSRs the generator may access and in which forms.
// The restrictions keep the native and virtualized executions
// path-coincident:
//
//   - mideleg is set-only: the virtual mideleg hardwires the S bits while
//     the native one is writable, so programs may only keep it at the
//     canonical 0x222.
//   - mip/sip are immediate-only (zimm ≤ 31 reaches SSIP but not the
//     timer/external bits, which are hardware-driven and asymmetric).
//   - satp is immediate-only so the mode nibble stays Bare (classification
//     reads instruction memory physically).
//   - menvcfg is immediate-only so Sstc's STCE (bit 63) stays clear; STIP
//     would otherwise depend on the free-running clock.
//   - pmpcfg is immediate-only (byte 0; the lock bit 0x80 is unreachable
//     from a 5-bit immediate, NAPOT 0x18 is reachable) while pmpaddr is
//     unrestricted; only virtual-count entries are named at all, because
//     entries past it exist natively but not under the monitor.
//   - counters are read-only, and the engine resynchronizes the destination
//     register after each read (cycle counts legitimately differ).
func csrSpecs(cfg *refmodel.Config) []asm.GenCSR {
	specs := []asm.GenCSR{
		{CSR: rv.CSRMstatus, Forms: asm.FormsAll},
		{CSR: rv.CSRMisa, Forms: asm.FormsAll},
		{CSR: rv.CSRMedeleg, Forms: asm.FormsAll},
		{CSR: rv.CSRMideleg, Forms: asm.FormsSet},
		{CSR: rv.CSRMie, Forms: asm.FormsAll},
		{CSR: rv.CSRMtvec, Forms: asm.FormsAll},
		{CSR: rv.CSRMcounteren, Forms: asm.FormsAll},
		{CSR: rv.CSRMscratch, Forms: asm.FormsAll},
		{CSR: rv.CSRMepc, Forms: asm.FormsAll},
		{CSR: rv.CSRMcause, Forms: asm.FormsAll},
		{CSR: rv.CSRMtval, Forms: asm.FormsAll},
		{CSR: rv.CSRMseccfg, Forms: asm.FormsAll},
		{CSR: rv.CSRMcountinhibit, Forms: asm.FormsAll},
		{CSR: rv.CSRMip, Forms: asm.FormsImm},
		{CSR: rv.CSRMenvcfg, Forms: asm.FormsImm},
		{CSR: rv.CSRSstatus, Forms: asm.FormsAll},
		{CSR: rv.CSRSie, Forms: asm.FormsAll},
		{CSR: rv.CSRStvec, Forms: asm.FormsAll},
		{CSR: rv.CSRScounteren, Forms: asm.FormsAll},
		{CSR: rv.CSRSenvcfg, Forms: asm.FormsAll},
		{CSR: rv.CSRSscratch, Forms: asm.FormsAll},
		{CSR: rv.CSRSepc, Forms: asm.FormsAll},
		{CSR: rv.CSRScause, Forms: asm.FormsAll},
		{CSR: rv.CSRStval, Forms: asm.FormsAll},
		{CSR: rv.CSRSip, Forms: asm.FormsImm},
		{CSR: rv.CSRSatp, Forms: asm.FormsImm},
		{CSR: rv.CSRMvendorid, Forms: asm.FormsRead},
		{CSR: rv.CSRMarchid, Forms: asm.FormsRead},
		{CSR: rv.CSRMimpid, Forms: asm.FormsRead},
		{CSR: rv.CSRMhartid, Forms: asm.FormsRead},
		{CSR: rv.CSRMconfigptr, Forms: asm.FormsRead},
		{CSR: rv.CSRMcycle, Forms: asm.FormsRead},
		{CSR: rv.CSRMinstret, Forms: asm.FormsRead},
		{CSR: rv.CSRCycle, Forms: asm.FormsRead},
		{CSR: rv.CSRInstret, Forms: asm.FormsRead},
		{CSR: rv.CSRTime, Forms: asm.FormsRead},
		{CSR: rv.CSRHpmcounter3, Forms: asm.FormsRead},
		{CSR: rv.CSRPmpcfg0, Forms: asm.FormsImm},
	}
	for i := 0; i < cfg.PMPCount; i++ {
		specs = append(specs, asm.GenCSR{CSR: rv.CSRPmpaddr0 + uint16(i), Forms: asm.FormsAll})
	}
	if cfg.PMPCount > 8 {
		specs = append(specs, asm.GenCSR{CSR: rv.CSRPmpcfg2, Forms: asm.FormsImm})
	}
	if cfg.HasSstc {
		specs = append(specs, asm.GenCSR{CSR: rv.CSRStimecmp, Forms: asm.FormsAll})
	}
	if cfg.HasH {
		for _, n := range []uint16{
			rv.CSRHstatus, rv.CSRHedeleg, rv.CSRHideleg, rv.CSRHie,
			rv.CSRHcounteren, rv.CSRHgeie, rv.CSRHtval, rv.CSRHip, rv.CSRHvip,
			rv.CSRHtinst, rv.CSRHenvcfg,
			rv.CSRVsstatus, rv.CSRVsie, rv.CSRVstvec, rv.CSRVsscratch,
			rv.CSRVsepc, rv.CSRVscause, rv.CSRVstval, rv.CSRVsip,
			rv.CSRMtinst, rv.CSRMtval2,
		} {
			specs = append(specs, asm.GenCSR{CSR: n, Forms: asm.FormsAll})
		}
		// hgatp and vsatp are immediate-only for the same reason satp is:
		// a 5-bit immediate cannot reach the mode nibble, so a fuzzed write
		// never switches real translation on mid-case.
		specs = append(specs,
			asm.GenCSR{CSR: rv.CSRHgatp, Forms: asm.FormsImm},
			asm.GenCSR{CSR: rv.CSRVsatp, Forms: asm.FormsImm})
	}
	for _, n := range cfg.CustomCSRs {
		specs = append(specs, asm.GenCSR{CSR: n, Forms: asm.FormsAll})
	}
	return specs
}

func (e *Engine) genProg(rng *rand.Rand) []uint32 { return asm.Generate(rng, e.GenCfg) }

func (e *Engine) genOne(rng *rand.Rand, slot int) uint32 { return asm.GenOne(rng, e.GenCfg, slot) }

// inRegion reports whether pc is inside the program or scratch window —
// the only regions where execution is symmetric by construction (below the
// firmware base, memory is monitor-protected on the virtualized machine
// but plain RAM on the native one).
func inRegion(pc uint64) bool {
	return (pc >= ProgBase && pc < ProgBase+ProgCap) ||
		(pc >= ScratchBase && pc < ScratchBase+ScratchSize)
}

func inProg(pc uint64) bool { return pc >= ProgBase && pc < ProgBase+ProgCap }

// memEffAddr decodes a memory instruction's effective address from the
// hart's current registers, pre-step. ok is false for non-memory opcodes.
func memEffAddr(w uint32, h *hart.Hart) (addr uint64, size int, ok bool) {
	switch w & 0x7F {
	case 0x03: // loads
		return h.Reg(rv.Rs1Of(w)) + rv.ImmI(w), 1 << (w >> 12 & 3), true
	case 0x23: // stores
		return h.Reg(rv.Rs1Of(w)) + rv.ImmS(w), 1 << (w >> 12 & 3), true
	case 0x2F: // AMO/LR/SC address directly from rs1
		size = 4
		if w>>12&7 == 3 {
			size = 8
		}
		return h.Reg(rv.Rs1Of(w)), size, true
	}
	return 0, 0, false
}

// dataInRegion reports whether the whole access [addr, addr+size) stays
// inside the program or scratch window.
func dataInRegion(addr uint64, size int) bool {
	end := addr + uint64(size)
	if end < addr {
		return false
	}
	return (addr >= ProgBase && end <= ProgBase+ProgCap) ||
		(addr >= ScratchBase && end <= ScratchBase+ScratchSize)
}

// isCounterCSR names the counters whose read values legitimately differ
// between the machines (cycle accounting) and are resynchronized from the
// native hart after each read.
func isCounterCSR(n uint16) bool {
	switch n {
	case rv.CSRMcycle, rv.CSRMinstret, rv.CSRCycle, rv.CSRInstret:
		return true
	}
	return false
}

func isCSROp(op refmodel.Op) bool {
	switch op {
	case refmodel.OpCSRRW, refmodel.OpCSRRS, refmodel.OpCSRRC,
		refmodel.OpCSRRWI, refmodel.OpCSRRSI, refmodel.OpCSRRCI:
		return true
	}
	return false
}

// installNative writes a canonical state onto the native hart verbatim.
func (e *Engine) installNative(s *refmodel.State) {
	h := e.Native.Harts[0]
	c := &h.CSR
	h.Regs = s.Regs
	h.Regs[0] = 0
	h.PC = s.PC
	h.Mode = rv.Mode(s.Priv)

	c.WriteMstatus(s.Status.Bits())
	c.Medeleg = s.Medeleg
	c.Mideleg = s.Mideleg
	c.Mie = s.Mie
	c.Mtvec = s.Mtvec
	c.Mcounteren = s.Mcounteren
	c.Menvcfg = s.Menvcfg
	c.Mscratch = s.Mscratch
	c.Mepc = s.Mepc
	c.Mcause = s.Mcause
	c.Mtval = s.Mtval
	c.Mseccfg = s.Mseccfg
	c.Mcountinhibit = s.Mcountinhibit
	c.Stvec = s.Stvec
	c.Scounteren = s.Scounteren
	c.Senvcfg = s.Senvcfg
	c.Sscratch = s.Sscratch
	c.Sepc = s.Sepc
	c.Scause = s.Scause
	c.Stval = s.Stval
	c.Satp = s.Satp
	c.Stimecmp = s.Stimecmp
	c.SetMip(s.MipSW)
	if e.PhysCfg.HasH {
		h.V = s.V
		c.Hstatus, c.Hedeleg, c.Hideleg = s.Hstatus, s.Hedeleg, s.Hideleg
		c.Hie, c.Hcounteren, c.Hgeie = s.Hie, s.Hcounteren, s.Hgeie
		c.Htval, c.Hip, c.Hvip = s.Htval, s.Hip, s.Hvip
		c.Htinst, c.Hgatp, c.Henvcfg = s.Htinst, s.Hgatp, s.Henvcfg
		c.Vsstatus, c.Vsie, c.Vstvec, c.Vsscratch = s.Vsstatus, s.Vsie, s.Vstvec, s.Vsscratch
		c.Vsepc, c.Vscause, c.Vstval, c.Vsip, c.Vsatp = s.Vsepc, s.Vscause, s.Vstval, s.Vsip, s.Vsatp
		c.Mtinst, c.Mtval2 = s.Mtinst, s.Mtval2
	}
	for _, n := range e.VirtCfg.CustomCSRs {
		c.Custom[n] = s.Custom[n]
	}
	for i := 0; i < e.PhysCfg.PMPCount; i++ {
		if i < e.VirtCfg.PMPCount {
			c.PMP.ForceAddr(i, s.PmpAddr[i])
			c.PMP.ForceCfg(i, s.PmpCfg[i])
		} else {
			c.PMP.ForceAddr(i, 0)
			c.PMP.ForceCfg(i, 0)
		}
	}
}

// installVirt writes the same canonical state into the monitor's virtual
// CSR file and asks the monitor to project it onto the physical hart,
// exactly as a world switch would.
func (e *Engine) installVirt(s *refmodel.State) {
	ctx := e.Ctx
	h := ctx.Hart
	v := ctx.V

	v.Mstatus = s.Status.Bits()
	v.Medeleg = s.Medeleg
	v.Mideleg = s.Mideleg
	v.Mie = s.Mie
	v.Mtvec = s.Mtvec
	v.Mcounteren = s.Mcounteren
	v.Menvcfg = s.Menvcfg
	v.Mcountinhibit = s.Mcountinhibit
	v.Mscratch = s.Mscratch
	v.Mepc = s.Mepc
	v.Mcause = s.Mcause
	v.Mtval = s.Mtval
	v.Mseccfg = s.Mseccfg
	v.Stvec = s.Stvec
	v.Scounteren = s.Scounteren
	v.Senvcfg = s.Senvcfg
	v.Sscratch = s.Sscratch
	v.Sepc = s.Sepc
	v.Scause = s.Scause
	v.Stval = s.Stval
	v.Satp = s.Satp
	v.Stimecmp = s.Stimecmp
	v.MipSW = s.MipSW
	if e.VirtCfg.HasH {
		ctx.VirtV = s.V
		v.Hstatus, v.Hedeleg, v.Hideleg = s.Hstatus, s.Hedeleg, s.Hideleg
		v.Hie, v.Hcounteren, v.Hgeie = s.Hie, s.Hcounteren, s.Hgeie
		v.Htval, v.Hip, v.Hvip = s.Htval, s.Hip, s.Hvip
		v.Htinst, v.Hgatp, v.Henvcfg = s.Htinst, s.Hgatp, s.Henvcfg
		v.Vsstatus, v.Vsie, v.Vstvec, v.Vsscratch = s.Vsstatus, s.Vsie, s.Vstvec, s.Vsscratch
		v.Vsepc, v.Vscause, v.Vstval, v.Vsip, v.Vsatp = s.Vsepc, s.Vscause, s.Vstval, s.Vsip, s.Vsatp
		v.Mtinst, v.Mtval2 = s.Mtinst, s.Mtval2
	}
	for _, n := range e.VirtCfg.CustomCSRs {
		v.Custom[n] = s.Custom[n]
	}
	for i := 0; i < e.VirtCfg.PMPCount; i++ {
		v.PMP.ForceAddr(i, s.PmpAddr[i])
		v.PMP.ForceCfg(i, s.PmpCfg[i])
	}

	ctx.VirtMode = rv.Mode(s.Priv)
	h.Regs = s.Regs
	h.Regs[0] = 0
	h.PC = s.PC
	if s.Priv == refmodel.M {
		h.Mode = rv.ModeU // vM runs deprivileged
		h.V = false
	} else {
		// Direct execution: the guest's virtualization mode is the physical
		// one.
		h.Mode = rv.Mode(s.Priv)
		h.V = s.V
	}
	e.Mon.VerifInstallState(ctx)
}

// nativeView captures the native hart as a reference-model state.
func (e *Engine) nativeView() *refmodel.State {
	h := e.Native.Harts[0]
	c := &h.CSR
	s := refmodel.NewState()
	s.Regs = h.Regs
	s.Regs[0] = 0
	s.PC = h.PC
	s.Priv = uint8(h.Mode)
	s.Status = refmodel.MstatusFromBits(c.Mstatus)
	s.Medeleg, s.Mideleg, s.Mie = c.Medeleg, c.Mideleg, c.Mie
	s.MipSW = c.MipSW()
	s.MipHW = e.Native.Clint.Pending(0) | e.Native.Plic.Pending(0)
	s.Mtvec, s.Mcounteren, s.Menvcfg = c.Mtvec, c.Mcounteren, c.Menvcfg
	s.Mscratch, s.Mepc, s.Mcause, s.Mtval = c.Mscratch, c.Mepc, c.Mcause, c.Mtval
	s.Mseccfg, s.Mcountinhibit = c.Mseccfg, c.Mcountinhibit
	s.Stvec, s.Scounteren, s.Senvcfg = c.Stvec, c.Scounteren, c.Senvcfg
	s.Sscratch, s.Sepc, s.Scause, s.Stval = c.Sscratch, c.Sepc, c.Scause, c.Stval
	s.Satp, s.Stimecmp = c.Satp, c.Stimecmp
	if e.PhysCfg.HasH {
		s.V = h.V
		s.Hstatus, s.Hedeleg, s.Hideleg = c.Hstatus, c.Hedeleg, c.Hideleg
		s.Hie, s.Hcounteren, s.Hgeie = c.Hie, c.Hcounteren, c.Hgeie
		s.Htval, s.Hip, s.Hvip = c.Htval, c.Hip, c.Hvip
		s.Htinst, s.Hgatp, s.Henvcfg = c.Htinst, c.Hgatp, c.Henvcfg
		s.Vsstatus, s.Vsie, s.Vstvec, s.Vsscratch = c.Vsstatus, c.Vsie, c.Vstvec, c.Vsscratch
		s.Vsepc, s.Vscause, s.Vstval, s.Vsip, s.Vsatp = c.Vsepc, c.Vscause, c.Vstval, c.Vsip, c.Vsatp
		s.Mtinst, s.Mtval2 = c.Mtinst, c.Mtval2
	}
	for _, n := range e.VirtCfg.CustomCSRs {
		s.Custom[n] = c.Custom[n]
	}
	for i := 0; i < e.PhysCfg.PMPCount; i++ {
		s.PmpCfg[i] = c.PMP.Cfg(i)
		s.PmpAddr[i] = c.PMP.Addr(i)
	}
	s.WFI = h.Waiting
	return s
}

// virtView captures the virtualized machine's architectural virtual state.
func (e *Engine) virtView() *refmodel.State {
	ctx := e.Ctx
	e.Mon.VerifSyncVirtState(ctx) // idempotent physical→virtual copy in OS world
	h := ctx.Hart
	v := ctx.V
	s := refmodel.NewState()
	s.Regs = h.Regs
	s.Regs[0] = 0
	s.PC = h.PC
	if ctx.VirtMode == rv.ModeM {
		s.Priv = refmodel.M
	} else {
		// During direct execution the OS changes privilege without monitor
		// involvement; the physical mode is the virtual mode.
		s.Priv = uint8(h.Mode)
	}
	s.Status = refmodel.MstatusFromBits(v.Mstatus)
	s.Medeleg, s.Mideleg, s.Mie = v.Medeleg, v.Mideleg, v.Mie
	s.MipSW = v.MipSW
	s.MipHW = e.Mon.VClint().VirtPending(0)
	s.Mtvec, s.Mcounteren, s.Menvcfg = v.Mtvec, v.Mcounteren, v.Menvcfg
	s.Mscratch, s.Mepc, s.Mcause, s.Mtval = v.Mscratch, v.Mepc, v.Mcause, v.Mtval
	s.Mseccfg, s.Mcountinhibit = v.Mseccfg, v.Mcountinhibit
	s.Stvec, s.Scounteren, s.Senvcfg = v.Stvec, v.Scounteren, v.Senvcfg
	s.Sscratch, s.Sepc, s.Scause, s.Stval = v.Sscratch, v.Sepc, v.Scause, v.Stval
	s.Satp, s.Stimecmp = v.Satp, v.Stimecmp
	if e.VirtCfg.HasH {
		if ctx.VirtMode != rv.ModeM {
			s.V = h.V
		}
		s.Hstatus, s.Hedeleg, s.Hideleg = v.Hstatus, v.Hedeleg, v.Hideleg
		s.Hie, s.Hcounteren, s.Hgeie = v.Hie, v.Hcounteren, v.Hgeie
		s.Htval, s.Hip, s.Hvip = v.Htval, v.Hip, v.Hvip
		s.Htinst, s.Hgatp, s.Henvcfg = v.Htinst, v.Hgatp, v.Henvcfg
		s.Vsstatus, s.Vsie, s.Vstvec, s.Vsscratch = v.Vsstatus, v.Vsie, v.Vstvec, v.Vsscratch
		s.Vsepc, s.Vscause, s.Vstval, s.Vsip, s.Vsatp = v.Vsepc, v.Vscause, v.Vstval, v.Vsip, v.Vsatp
		s.Mtinst, s.Mtval2 = v.Mtinst, v.Mtval2
	}
	for _, n := range e.VirtCfg.CustomCSRs {
		s.Custom[n] = v.Custom[n]
	}
	for i := 0; i < e.VirtCfg.PMPCount; i++ {
		s.PmpCfg[i] = v.PMP.Cfg(i)
		s.PmpAddr[i] = v.PMP.Addr(i)
	}
	s.WFI = ctx.VirtWaiting || h.Waiting
	return s
}

// Run executes one test case in lockstep and returns the first divergence
// (nil if none) plus the number of lockstep steps retired.
func (e *Engine) Run(tc *TestCase) (*Finding, int) {
	e.canonicalize(tc)
	s := tc.State

	e.Native.Restore(e.natBase)
	e.Virt.Restore(e.virtBase)
	e.Mon.ResetVirt(e.Ctx)

	prog := make([]byte, 4*len(tc.Prog))
	for i, w := range tc.Prog {
		binary.LittleEndian.PutUint32(prog[4*i:], w)
	}
	for _, m := range []*hart.Machine{e.Native, e.Virt} {
		m.LoadImage(ProgBase, e.progZero)
		m.LoadImage(ScratchBase, e.scratchZero)
		m.LoadImage(ProgBase, prog)
	}

	e.installNative(s)
	e.installVirt(s)

	sp := s.Clone() // shadow of the native machine
	sv := s.Clone() // shadow of the virtualized machine

	finding := func(where string, step int, word uint32, deltas []refmodel.Delta) *Finding {
		return &Finding{Case: tc, Step: step, Where: where, Word: word, Deltas: deltas}
	}

	step := 0
	for ; step < StepBudget; step++ {
		// Machine-level end states.
		if e.Mon.HaltedReason != "" {
			return finding(WhereMonitorHalt, step, 0, []refmodel.Delta{
				{Field: "monitor halted: " + e.Mon.HaltedReason, A: 1, B: 0}}), step
		}
		nh, nr := e.Native.Halted()
		vh, vr := e.Virt.Halted()
		if nh != vh || (nh && nr != vr) {
			return finding(WhereHalt, step, 0, []refmodel.Delta{
				{Field: fmt.Sprintf("halt: native=%q virt=%q", nr, vr),
					A: b2u(nh), B: b2u(vh)}}), step
		}
		if nh {
			break
		}

		pc := e.Native.Harts[0].PC
		if !inRegion(pc) {
			break // execution escaped the symmetric memory regions
		}

		// Deliver a pending delegated interrupt in lockstep: both physical
		// harts take the S-mode trap natively and identically. Anything
		// routed to M (monitor interception on one side, mtvec on the
		// other) has inherently different timing and ends the case.
		if code := refmodel.PendingInterrupt(e.PhysCfg, sp); code >= 0 {
			if sp.Mideleg>>uint(code)&1 == 0 || sp.Priv == refmodel.M {
				break
			}
			refmodel.TakeInterrupt(e.PhysCfg, sp, uint64(code))
			refmodel.TakeInterrupt(e.VirtCfg, sv, uint64(code))
			e.natTrap = nil
			e.Native.Step()
			e.Virt.Step()
			if f := e.diffStep(finding, step, 0, sp, sv); f != nil {
				return f, step
			}
			continue
		}

		wb, err := e.Native.Bus.ReadBytes(pc, 4)
		if err != nil {
			break
		}
		w := binary.LittleEndian.Uint32(wb)
		op := w & 0x7F
		modeled := op == 0x73 || op == 0x0F
		if modeled && !inProg(pc) {
			// SYSTEM instructions materialized in scratch data probe CSR
			// existence, which legitimately differs (e.g. PMP entries past
			// the virtual count); only generator-constrained programs are
			// lockstep-safe.
			break
		}
		if op == 0x73 {
			ins := refmodel.Decode(w)
			if isCSROp(ins.Op) && isCounterCSR(ins.CSR) &&
				!(ins.Op == refmodel.OpCSRRS && ins.Rs1 == 0) {
				break // counter writes warp the native clock
			}
		}
		if a, n, isMem := memEffAddr(w, e.Native.Harts[0]); isMem && !dataInRegion(a, n) {
			// The guest's data flow computed an address outside its own
			// program/scratch windows. Physical layout there is asymmetric
			// by design — the monitor's carve-out and the emulated devices
			// exist on one side only — and stores there would leak state
			// across cases, so the comparison stops here.
			break
		}

		e.natTrap = nil
		e.Native.Step()
		e.Virt.Step()
		nat := e.natTrap

		if nat != nil && rv.CauseIsInterrupt(nat.Cause) {
			return finding(WhereInterrupt, step, w, []refmodel.Delta{
				{Field: "cause", A: nat.Cause, B: 0}}), step
		}

		switch {
		case nat != nil && rv.CauseCode(nat.Cause) == rv.ExcInstrAccessFault:
			// The fetch itself faulted (PMP); the word read above never
			// reached the pipeline.
			refmodel.TakeException(e.PhysCfg, sp, rv.ExcInstrAccessFault, nat.Tval)
			refmodel.TakeException(e.VirtCfg, sv, rv.ExcInstrAccessFault, nat.Tval)
		case modeled:
			refmodel.HW(e.PhysCfg, sp, w)
			refmodel.HW(e.VirtCfg, sv, w)
		case nat != nil:
			refmodel.TakeException(e.PhysCfg, sp, rv.CauseCode(nat.Cause), nat.Tval)
			refmodel.TakeException(e.VirtCfg, sv, rv.CauseCode(nat.Cause), nat.Tval)
		default:
			// Unprivileged instruction, retired: the reference model does
			// not model it; the native hart's own result is the oracle both
			// shadows adopt (the virtualized machine must match it — that
			// is the native-vs-virt diff).
			h := e.Native.Harts[0]
			for i := 1; i < 32; i++ {
				sp.Regs[i] = h.Regs[i]
				sv.Regs[i] = h.Regs[i]
			}
			sp.PC, sv.PC = h.PC, h.PC
		}

		// Counter reads retire with machine-specific values; adopt the
		// native result on all sides.
		if modeled && nat == nil && op == 0x73 {
			ins := refmodel.Decode(w)
			if ins.Op == refmodel.OpCSRRS && ins.Rs1 == 0 && ins.Rd != 0 &&
				isCounterCSR(ins.CSR) {
				val := e.Native.Harts[0].Regs[ins.Rd]
				e.Virt.Harts[0].Regs[ins.Rd] = val
				sp.Regs[ins.Rd] = val
				sv.Regs[ins.Rd] = val
			}
		}

		if f := e.diffStep(finding, step, w, sp, sv); f != nil {
			return f, step
		}

		if sp.WFI || sv.WFI {
			break // all three sides agreed on WFI (diffed above); nothing wakes it
		}
	}

	// End of case: the memory images must agree wherever the program could
	// write.
	for _, r := range [][2]uint64{{ProgBase, ProgCap}, {ScratchBase, ScratchSize}} {
		nb, err1 := e.Native.Bus.ReadBytes(r[0], int(r[1]))
		vb, err2 := e.Virt.Bus.ReadBytes(r[0], int(r[1]))
		if err1 != nil || err2 != nil || !bytes.Equal(nb, vb) {
			off := 0
			for off < len(nb) && off < len(vb) && nb[off] == vb[off] {
				off++
			}
			return &Finding{Case: tc, Step: step, Where: WhereMemory,
				Deltas: []refmodel.Delta{{
					Field: fmt.Sprintf("mem[%#x]", r[0]+uint64(off)),
					A:     peek(nb, off), B: peek(vb, off)}}}, step
		}
	}
	return nil, step
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

func peek(b []byte, off int) uint64 {
	if off < len(b) {
		return uint64(b[off])
	}
	return 0
}

// diffStep compares all three pairs after one lockstep step.
func (e *Engine) diffStep(mk func(string, int, uint32, []refmodel.Delta) *Finding,
	step int, word uint32, sp, sv *refmodel.State) *Finding {
	nv := e.nativeView()
	if ds := refmodel.Diff(e.PhysCfg, nv, sp); len(ds) > 0 {
		return mk(WhereNativeModel, step, word, ds)
	}
	vv := e.virtView()
	if ds := refmodel.Diff(e.VirtCfg, vv, sv); len(ds) > 0 {
		return mk(WhereVirtModel, step, word, ds)
	}
	if ds := refmodel.Diff(e.VirtCfg, nv, vv); len(ds) > 0 {
		return mk(WhereNativeVirt, step, word, ds)
	}
	return nil
}
