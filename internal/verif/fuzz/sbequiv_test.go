package fuzz

import "testing"

// TestSuperblockEquivalenceSmoke runs a short interpreter-vs-fastpath-vs-
// superblock batch on both profiles across schedulers, quanta, timer, and
// SMC cases and requires bit-exact end-state agreement. The full-size run
// is scripts/verify.sh's superblock gate.
func TestSuperblockEquivalenceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("superblock-equivalence smoke is not short")
	}
	st, err := RunSuperblockEquivalence([]string{"visionfive2", "p550"}, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cases == 0 || st.Steps == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
	if st.SBRetired == 0 {
		t.Fatalf("no instructions retired inside superblocks — the tier never engaged: %+v", st)
	}
	for _, m := range st.Mismatches {
		t.Errorf("superblock divergence: %s", m)
	}
	t.Logf("superblock equivalence: %d cases, %d steps, %d sb-retired, %d mismatches",
		st.Cases, st.Steps, st.SBRetired, len(st.Mismatches))
}
