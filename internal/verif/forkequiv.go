package verif

// Fork-equivalence suite: the gate for the copy-on-write snapshot/fork
// engine. Each randomized case boots a machine, runs it k1 steps, forks it
// (Machine.Snapshot + image spawn), and runs parent and child k2 more
// steps; a cold machine replays the identical trajectory (k1 then k2 with
// the same call sequence). Both the child and the post-fork parent must
// match the cold replay bit for bit — cycle counters, registers, CSRs,
// memory, console output, and mtime — across both schedulers and both
// fastpath settings. Any divergence means a fork is observable from
// inside the machine, which would invalidate every fork-spawned campaign.
//
// Cases are closed systems in the scheduler-equivalence style (see
// internal/verif/fuzz/schedequiv.go): each hart is confined by locked PMP
// entries to its own program and scratch windows, so generated wild
// accesses trap deterministically instead of wandering into device space.
// Unlike schedequiv the wall clock runs here: forks must preserve the
// mtime remainder exactly.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"

	"govfm/internal/asm"
	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/pmp"
	"govfm/internal/rv"
)

const (
	// forkProgCap / forkScratchSize mirror the fuzz package's windows
	// (NAPOT-aligned, per-hart tiled).
	forkProgBase    = core.FirmwareBase
	forkProgCap     = 0x2000
	forkScratchBase = core.OSBase
	forkScratchSize = 0x1_0000
	forkSlots       = 48

	// forkStepBudget bounds the case's total trajectory (k1 + k2).
	forkStepBudget = 512
)

// forkGenCSRs is the CSR surface generated programs may touch — hart-local
// plumbing only, interrupt-pending CSRs stay off the list.
var forkGenCSRs = []asm.GenCSR{
	{CSR: rv.CSRMscratch, Forms: asm.FormsAll},
	{CSR: rv.CSRSscratch, Forms: asm.FormsAll},
	{CSR: rv.CSRMtvec, Forms: asm.FormsAll},
	{CSR: rv.CSRStvec, Forms: asm.FormsAll},
	{CSR: rv.CSRMepc, Forms: asm.FormsAll},
	{CSR: rv.CSRSepc, Forms: asm.FormsAll},
	{CSR: rv.CSRMcause, Forms: asm.FormsAll},
	{CSR: rv.CSRScause, Forms: asm.FormsAll},
	{CSR: rv.CSRMtval, Forms: asm.FormsAll},
	{CSR: rv.CSRStval, Forms: asm.FormsAll},
	{CSR: rv.CSRMedeleg, Forms: asm.FormsAll},
	{CSR: rv.CSRMstatus, Forms: asm.FormsImm},
	{CSR: rv.CSRMhartid, Forms: asm.FormsRead},
}

// forkHartInit is one hart's generated starting state.
type forkHartInit struct {
	Regs               [32]uint64
	Mstatus            uint64
	Medeleg            uint64
	Mtvec, Stvec       uint64
	Mepc, Sepc         uint64
	Mscratch, Sscratch uint64
	Mcause, Scause     uint64
	Mtval, Stval       uint64
}

// ForkCase is one fork-equivalence input.
type ForkCase struct {
	Profile    string
	Harts      int
	Quantum    uint64
	Sched      hart.SchedKind
	FastPath   bool
	Superblock bool   // superblock tier on (only meaningful with FastPath)
	K1, K2     uint64 // steps before the fork / steps after it

	Progs [][]uint32
	Init  []forkHartInit
}

func (tc *ForkCase) String() string {
	fp := "fast"
	if !tc.FastPath {
		fp = "nofast"
	}
	if tc.Superblock {
		fp += "+sb"
	}
	return fmt.Sprintf("forkcase{%s, harts=%d, sched=%v, %s, quantum=%d, k1=%d, k2=%d}",
		tc.Profile, tc.Harts, tc.Sched, fp, tc.Quantum, tc.K1, tc.K2)
}

// ForkMismatch is one fork-vs-cold-replay divergence.
type ForkMismatch struct {
	Case *ForkCase
	Desc string
}

func (m *ForkMismatch) String() string { return m.Desc + " in " + m.Case.String() }

// ForkEquivStats summarizes a fork-equivalence run.
type ForkEquivStats struct {
	Cases      int
	Steps      int // machine steps across all cases (parent trajectory)
	ForkPages  int // pages carried by all fork images (snapshot O(touched) proxy)
	Mismatches []*ForkMismatch
}

// forkRig holds one (profile, hart-count) configuration's machine trio:
// parent and cold are installed per case; child is re-imaged from the
// parent's fork each case via LoadImageState — deliberately exercising the
// worker-pool reuse path (one long-lived machine, many images) rather than
// allocating a fresh machine per case.
type forkRig struct {
	profile             string
	harts               int
	parent, cold, child *hart.Machine
	genCfg              asm.GenCfg
	progZero, scrZero   []byte
}

func forkProgBaseFor(i int) uint64    { return forkProgBase + uint64(i)*forkProgCap }
func forkScratchBaseFor(i int) uint64 { return forkScratchBase + uint64(i)*forkScratchSize }

func forkNapot(base, size uint64) uint64 { return (base >> 2) | (size>>3 - 1) }

func newForkRig(profile string, harts int) (*forkRig, error) {
	mk, ok := hart.Profiles()[profile]
	if !ok {
		return nil, fmt.Errorf("verif: unknown profile %q", profile)
	}
	rig := &forkRig{
		profile:  profile,
		harts:    harts,
		progZero: make([]byte, forkProgCap),
		scrZero:  make([]byte, forkScratchSize),
		genCfg: asm.GenCfg{
			Slots:      forkSlots,
			DataRegs:   []int{10, 11, 12, 13, 14, 15},
			BaseRegs:   []int{16, 17, 18},
			BaseWindow: 2048,
			CSRs:       forkGenCSRs,
		},
	}
	for _, dst := range []**hart.Machine{&rig.parent, &rig.cold, &rig.child} {
		cfg := mk()
		cfg.Harts = harts
		m, err := hart.NewMachine(cfg, core.DramSize)
		if err != nil {
			return nil, err
		}
		*dst = m
	}
	return rig, nil
}

// genForkCase draws one case for this rig's configuration.
func (rig *forkRig) genForkCase(rng *rand.Rand, sched hart.SchedKind, fast, sb bool, quantum uint64) *ForkCase {
	k1 := uint64(16 + rng.Intn(forkStepBudget/2))
	tc := &ForkCase{
		Profile:    rig.profile,
		Harts:      rig.harts,
		Quantum:    quantum,
		Sched:      sched,
		FastPath:   fast,
		Superblock: sb,
		K1:         k1,
		K2:         uint64(forkStepBudget) - k1,
		Progs:      make([][]uint32, rig.harts),
		Init:       make([]forkHartInit, rig.harts),
	}
	for i := 0; i < rig.harts; i++ {
		tc.Progs[i] = asm.Generate(rng, &rig.genCfg)
		in := &tc.Init[i]
		for r := 1; r < 32; r++ {
			in.Regs[r] = rng.Uint64()
		}
		for _, r := range rig.genCfg.BaseRegs {
			base := forkScratchBaseFor(i) + uint64(rng.Intn(forkScratchSize-4096))&^7
			if rng.Intn(6) == 0 {
				base |= uint64(rng.Intn(8))
			}
			in.Regs[r] = base
		}
		slot := func() uint64 { return forkProgBaseFor(i) + uint64(4*rng.Intn(forkSlots)) }
		in.Mtvec = slot() | uint64(rng.Intn(2))
		in.Stvec = slot() | uint64(rng.Intn(2))
		in.Mepc, in.Sepc = slot(), slot()
		in.Mstatus = rng.Uint64()&(uint64(1)<<1|1<<3|1<<5|1<<7|1<<8) |
			[]uint64{0, 1, 3}[rng.Intn(3)]<<11
		in.Medeleg = rng.Uint64() & 0xB3FF
		in.Mscratch, in.Sscratch = rng.Uint64(), rng.Uint64()
		in.Mcause, in.Scause = rng.Uint64(), rng.Uint64()
		in.Mtval, in.Stval = rng.Uint64(), rng.Uint64()
	}
	return tc
}

// install writes the case onto a machine: full reset, per-hart program and
// scratch images, starting state, locked-PMP confinement, and the case's
// scheduler/fastpath configuration.
func (rig *forkRig) install(m *hart.Machine, tc *ForkCase) {
	m.Reset(forkProgBase)
	m.Sched = tc.Sched
	m.Quantum = tc.Quantum
	m.SetFastPath(tc.FastPath)
	m.SetSuperblock(tc.Superblock)
	for i, h := range m.Harts {
		prog := make([]byte, 4*len(tc.Progs[i]))
		for j, w := range tc.Progs[i] {
			binary.LittleEndian.PutUint32(prog[4*j:], w)
		}
		m.LoadImage(forkProgBaseFor(i), rig.progZero)
		m.LoadImage(forkScratchBaseFor(i), rig.scrZero)
		m.LoadImage(forkProgBaseFor(i), prog)

		in := &tc.Init[i]
		h.Regs = in.Regs
		h.Regs[0] = 0
		h.PC = forkProgBaseFor(i)
		h.Mode = rv.ModeM
		c := &h.CSR
		c.WriteMstatus(in.Mstatus)
		c.Medeleg = in.Medeleg
		c.Mtvec, c.Stvec = in.Mtvec, in.Stvec
		c.Mepc, c.Sepc = in.Mepc, in.Sepc
		c.Mscratch, c.Sscratch = in.Mscratch, in.Sscratch
		c.Mcause, c.Scause = in.Mcause, in.Scause
		c.Mtval, c.Stval = in.Mtval, in.Stval

		f := c.PMP
		rwxNapot := uint8(pmp.CfgL | pmp.CfgR | pmp.CfgW | pmp.CfgX | pmp.ANapot<<3)
		f.ForceAddr(0, forkNapot(forkProgBaseFor(i), forkProgCap))
		f.ForceCfg(0, rwxNapot)
		f.ForceAddr(1, forkNapot(forkScratchBaseFor(i), forkScratchSize))
		f.ForceCfg(1, rwxNapot)
		f.ForceAddr(2, rv.Mask(54))
		f.ForceCfg(2, pmp.CfgL|pmp.ANapot<<3)
	}
}

// forkCSRDelta returns the first CSR field differing between two harts'
// files, or "".
func forkCSRDelta(a, b *hart.CSRFile) string {
	fields := []struct {
		name string
		a, b uint64
	}{
		{"mstatus", a.Mstatus, b.Mstatus}, {"medeleg", a.Medeleg, b.Medeleg},
		{"mideleg", a.Mideleg, b.Mideleg}, {"mie", a.Mie, b.Mie},
		{"mtvec", a.Mtvec, b.Mtvec}, {"mcounteren", a.Mcounteren, b.Mcounteren},
		{"menvcfg", a.Menvcfg, b.Menvcfg}, {"mscratch", a.Mscratch, b.Mscratch},
		{"mepc", a.Mepc, b.Mepc}, {"mcause", a.Mcause, b.Mcause},
		{"mtval", a.Mtval, b.Mtval}, {"mseccfg", a.Mseccfg, b.Mseccfg},
		{"stvec", a.Stvec, b.Stvec}, {"sscratch", a.Sscratch, b.Sscratch},
		{"sepc", a.Sepc, b.Sepc}, {"scause", a.Scause, b.Scause},
		{"stval", a.Stval, b.Stval}, {"satp", a.Satp, b.Satp},
		{"stimecmp", a.Stimecmp, b.Stimecmp},
		{"mip", a.Mip(0), b.Mip(0)},
	}
	for _, f := range fields {
		if f.a != f.b {
			return fmt.Sprintf("%s: forked=%#x cold=%#x", f.name, f.a, f.b)
		}
	}
	for i := 0; i < a.PMP.NumEntries(); i++ {
		if a.PMP.Cfg(i) != b.PMP.Cfg(i) || a.PMP.Addr(i) != b.PMP.Addr(i) {
			return fmt.Sprintf("pmp%d differs", i)
		}
	}
	return ""
}

// forkCompare checks every observable of machine got against cold and
// returns a description of the first divergence, or "".
func (rig *forkRig) forkCompare(got, cold *hart.Machine) string {
	gh, gr := got.Halted()
	ch, cr := cold.Halted()
	if gh != ch || gr != cr {
		return fmt.Sprintf("machine halt: forked=%v/%q cold=%v/%q", gh, gr, ch, cr)
	}
	if got.Clint.Time() != cold.Clint.Time() {
		return fmt.Sprintf("mtime: forked=%d cold=%d", got.Clint.Time(), cold.Clint.Time())
	}
	if got.Uart.Output() != cold.Uart.Output() {
		return fmt.Sprintf("uart: forked=%q cold=%q", got.Uart.Output(), cold.Uart.Output())
	}
	for i := range got.Harts {
		hG, hC := got.Harts[i], cold.Harts[i]
		if hG.Cycles != hC.Cycles {
			return fmt.Sprintf("hart%d cycles: forked=%d cold=%d", i, hG.Cycles, hC.Cycles)
		}
		if hG.Instret != hC.Instret || hG.SInstret != hC.SInstret {
			return fmt.Sprintf("hart%d instret: forked=%d/%d cold=%d/%d",
				i, hG.Instret, hG.SInstret, hC.Instret, hC.SInstret)
		}
		if hG.PC != hC.PC || hG.Mode != hC.Mode || hG.Waiting != hC.Waiting ||
			hG.Halted != hC.Halted {
			return fmt.Sprintf("hart%d pc/mode/wfi/halt: forked=%#x/%v/%v/%v cold=%#x/%v/%v/%v",
				i, hG.PC, hG.Mode, hG.Waiting, hG.Halted,
				hC.PC, hC.Mode, hC.Waiting, hC.Halted)
		}
		if hG.Regs != hC.Regs {
			return fmt.Sprintf("hart%d register file differs", i)
		}
		if d := forkCSRDelta(&hG.CSR, &hC.CSR); d != "" {
			return fmt.Sprintf("hart%d %s", i, d)
		}
		for _, r := range [][2]uint64{
			{forkProgBaseFor(i), forkProgCap}, {forkScratchBaseFor(i), forkScratchSize}} {
			bG, err1 := got.Bus.ReadBytes(r[0], int(r[1]))
			bC, err2 := cold.Bus.ReadBytes(r[0], int(r[1]))
			if err1 != nil || err2 != nil || !bytes.Equal(bG, bC) {
				return fmt.Sprintf("hart%d memory at %#x differs", i, r[0])
			}
		}
	}
	return ""
}

// forkQuanta / forkHartCounts are the sweep dimensions beyond
// sched × fastpath.
var (
	forkQuanta     = []uint64{1, 64, 1024}
	forkHartCounts = []int{1, 2}
)

// RunForkEquivalence fuzzes `cases` fork-equivalence cases per profile,
// swept across scheduler × fastpath × hart count × quantum. Every case
// runs a parent k1 steps, forks it, runs parent and child k2 more steps,
// and compares both against a cold machine replaying the identical k1+k2
// call sequence.
func RunForkEquivalence(profiles []string, seed int64, cases int) (*ForkEquivStats, error) {
	var rigs []*forkRig
	for _, prof := range profiles {
		for _, n := range forkHartCounts {
			rig, err := newForkRig(prof, n)
			if err != nil {
				return nil, err
			}
			rigs = append(rigs, rig)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	st := &ForkEquivStats{}
	for c := 0; c < cases*len(profiles); c++ {
		rig := rigs[c%len(rigs)]
		sched := hart.SchedSeq
		if c%2 == 1 {
			sched = hart.SchedPar
		}
		fast := (c/2)%2 == 0
		// Superblock sweep rides fastpath-on cases (the tier requires the
		// fast path); a forked machine must re-translate bit-identically.
		sb := fast && (c/4)%2 == 0
		tc := rig.genForkCase(rng, sched, fast, sb, forkQuanta[c%len(forkQuanta)])

		rig.install(rig.parent, tc)
		rig.parent.Run(tc.K1)
		img, err := rig.parent.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("verif: snapshot of %v: %w", tc, err)
		}
		st.ForkPages += img.Mem.Pages()

		// Child continues from the image on the rig's long-lived machine.
		rig.child.Sched = img.Sched
		rig.child.Quantum = img.Quantum
		if err := rig.child.LoadImageState(img); err != nil {
			return nil, fmt.Errorf("verif: spawn of %v: %w", tc, err)
		}
		rig.child.Run(tc.K2)
		rig.parent.Run(tc.K2)

		rig.install(rig.cold, tc)
		rig.cold.Run(tc.K1)
		rig.cold.Run(tc.K2)

		st.Cases++
		st.Steps += int(tc.K1 + tc.K2)
		for _, half := range []struct {
			tag string
			m   *hart.Machine
		}{{"child", rig.child}, {"parent", rig.parent}} {
			if desc := rig.forkCompare(half.m, rig.cold); desc != "" {
				st.Mismatches = append(st.Mismatches,
					&ForkMismatch{Case: tc, Desc: half.tag + ": " + desc})
			}
		}
		if len(st.Mismatches) >= 10 {
			break
		}
	}
	return st, nil
}
