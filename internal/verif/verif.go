// Package verif implements the paper's lightweight-formal-methods harness
// (§6): the monitor's specification is expressed as a function of the
// executable reference model (internal/refmodel, standing in for the
// official RISC-V Sail model), and two criteria are checked by systematic
// differential execution:
//
//   - Faithful emulation (Definition 1): for every privileged instruction
//     and virtual state, the monitor's emulator and the reference hw
//     function produce equivalent states.
//   - Faithful execution (Definition 2): the physical PMP file computed by
//     the monitor's cfg function makes direct firmware execution observe
//     exactly the protections a reference machine with the virtual PMP
//     file would enforce.
//
// Where the paper uses the Kani model checker for exhaustive symbolic
// execution, this harness enumerates the finite instruction/CSR space
// exhaustively and covers the value space with edge values plus seeded
// pseudo-random states — the same oracle, a different search strategy
// (documented in DESIGN.md).
package verif

import (
	"fmt"
	"math/rand"

	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/refmodel"
	"govfm/internal/rv"
)

// Harness owns a monitor-attached machine and the reference configuration
// mirroring its virtual hardware interface.
type Harness struct {
	Machine *hart.Machine
	Mon     *core.Monitor
	Ctx     *core.HartCtx
	RefCfg  *refmodel.Config
}

// NewHarness builds a single-hart machine with the monitor attached,
// using the given platform profile.
func NewHarness(cfg *hart.Config) (*Harness, error) {
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		return nil, err
	}
	mon, err := core.Attach(m, core.Options{FirmwareEntry: core.FirmwareBase})
	if err != nil {
		return nil, err
	}
	mon.Boot()
	return &Harness{
		Machine: m,
		Mon:     mon,
		Ctx:     mon.Ctx[0],
		RefCfg: &refmodel.Config{
			PMPCount:      mon.NumVirtPMP(),
			HasSstc:       cfg.HasSstc,
			HasTimeCSR:    cfg.HasTimeCSR,
			HasH:          cfg.HasH,
			MidelegForced: true,
			CustomCSRs:    cfg.CustomCSRs,
			Mvendorid:     cfg.Mvendorid,
			Marchid:       cfg.Marchid,
			Mimpid:        cfg.Mimpid,
			Mhartid:       0,
		},
	}, nil
}

// hstatusWritable is the set of hstatus fields the platform implements
// (GVA, SPV, SPVP, HU, VTVM, VTW, VTSR); VSXL is fixed at 64-bit.
const hstatusWritable = uint64(1)<<rv.HstatusGVA | 1<<rv.HstatusSPV |
	1<<rv.HstatusSPVP | 1<<rv.HstatusHU | 1<<rv.HstatusVTVM |
	1<<rv.HstatusVTW | 1<<rv.HstatusVTSR

// counterCSRs are free-running hardware counters whose read values are
// inherently asynchronous between the two models; rd comparison is skipped
// for reads of these (the paper's ≃ "implicitly takes into account
// differences in internal representation").
func isCounterCSR(n uint16) bool {
	switch n {
	case rv.CSRCycle, rv.CSRMcycle, rv.CSRInstret, rv.CSRMinstret, rv.CSRTime:
		return true
	}
	return false
}

// GenState installs a pseudo-random but architecturally legal virtual
// state into both the monitor's shadow (via h.Ctx) and a fresh reference
// state, returning the latter. The two are field-for-field equivalent.
func (h *Harness) GenState(rng *rand.Rand) *refmodel.State {
	v := h.Ctx.V
	s := refmodel.NewState()

	// GPRs are shared between the worlds: the hart's registers.
	for i := 1; i < 32; i++ {
		val := rng.Uint64()
		h.Machine.Harts[0].Regs[i] = val
		s.Regs[i] = val
	}

	// Virtual privilege mode (the firmware executes in vM; sret/mret need
	// the other modes reachable too).
	mode := []rv.Mode{rv.ModeM, rv.ModeM, rv.ModeM, rv.ModeS, rv.ModeU}[rng.Intn(5)]
	h.Ctx.VirtMode = mode
	s.Priv = uint8(mode)
	// Virtualization mode: only guests (VS/VU) run with V=1; always
	// reassign so a value from an earlier round cannot leak.
	virtV := h.RefCfg.HasH && mode != rv.ModeM && rng.Intn(2) == 0
	h.Ctx.VirtV = virtV
	s.V = virtV

	// mstatus: random writable fields, legal MPP.
	mst := rng.Uint64() & (uint64(1)<<1 | 1<<3 | 1<<5 | 1<<7 | 1<<8 |
		1<<17 | 1<<18 | 1<<19 | 1<<20 | 1<<21 | 1<<22)
	mst |= []uint64{0, 1, 3}[rng.Intn(3)] << 11
	mst |= uint64(2)<<32 | uint64(2)<<34
	if h.RefCfg.HasH {
		mst |= rng.Uint64() & (uint64(1)<<rv.MstatusGVA | 1<<rv.MstatusMPV)
	}
	v.Mstatus = mst
	s.Status = refmodel.MstatusFromBits(mst)

	set := func(dst *uint64, val uint64) uint64 {
		*dst = val
		return val
	}
	medelegMask := uint64(0xB3FF)
	mideleg := uint64(0x222)
	if h.RefCfg.HasH {
		medelegMask |= 1<<10 | 1<<20 | 1<<21 | 1<<22 | 1<<23
		mideleg |= rv.VSIntMask // hardwired-delegated with H
	}
	s.Medeleg = set(&v.Medeleg, rng.Uint64()&medelegMask)
	s.Mideleg = set(&v.Mideleg, mideleg)
	s.Mie = set(&v.Mie, rng.Uint64()&0xAAA)
	s.Mtvec = set(&v.Mtvec, rng.Uint64()&^3|uint64(rng.Intn(2))) // mode 0/1 only
	s.Mcounteren = set(&v.Mcounteren, rng.Uint64()&0xFFFF_FFFF)
	s.Mscratch = set(&v.Mscratch, rng.Uint64())
	s.Mepc = set(&v.Mepc, rng.Uint64()&^3)
	s.Mcause = set(&v.Mcause, rng.Uint64())
	s.Mtval = set(&v.Mtval, rng.Uint64())
	s.Mseccfg = set(&v.Mseccfg, rng.Uint64()&7)
	s.Mcountinhibit = set(&v.Mcountinhibit, rng.Uint64()&0xFFFF_FFFD)
	s.Stvec = set(&v.Stvec, rng.Uint64()&^3)
	s.Scounteren = set(&v.Scounteren, rng.Uint64()&0xFFFF_FFFF)
	s.Senvcfg = set(&v.Senvcfg, rng.Uint64()&1)
	s.Sscratch = set(&v.Sscratch, rng.Uint64())
	s.Sepc = set(&v.Sepc, rng.Uint64()&^3)
	s.Scause = set(&v.Scause, rng.Uint64())
	s.Stval = set(&v.Stval, rng.Uint64())
	if rng.Intn(2) == 0 {
		s.Satp = set(&v.Satp, rv.SatpModeSv39<<60|rng.Uint64()&rv.Mask(44))
	} else {
		s.Satp = set(&v.Satp, 0)
	}
	if h.RefCfg.HasSstc {
		s.Menvcfg = set(&v.Menvcfg, rng.Uint64()&(1<<63))
		s.Stimecmp = set(&v.Stimecmp, rng.Uint64())
	} else {
		s.Menvcfg = set(&v.Menvcfg, 0)
		s.Stimecmp = set(&v.Stimecmp, 0)
	}
	// Hypervisor shadow state: randomized on H platforms, cleared
	// otherwise (stale values from earlier rounds must not leak).
	hGen := func(dst *uint64) uint64 {
		if h.RefCfg.HasH {
			return set(dst, rng.Uint64())
		}
		return set(dst, 0)
	}
	// Real (write-reachable) H registers carry their WARL-canonical forms;
	// the inert raw fields (hip, hgeie, henvcfg, vsie, vsip) stay fully
	// random — runtime writes never touch them on either side, so any
	// shared value is preserved.
	hMask := func(dst *uint64, mask uint64) uint64 {
		if h.RefCfg.HasH {
			return set(dst, rng.Uint64()&mask)
		}
		return set(dst, 0)
	}
	s.Mtinst = hGen(&v.Mtinst)
	s.Mtval2 = hGen(&v.Mtval2)
	if h.RefCfg.HasH {
		s.Hstatus = set(&v.Hstatus, rng.Uint64()&hstatusWritable|uint64(2)<<32)
		hg := rng.Uint64() &^ (uint64(0xF)<<60 | uint64(3)<<58 | 3)
		if rng.Intn(2) == 0 {
			hg |= uint64(rv.SatpModeSv39) << 60 // Sv39x4
		}
		s.Hgatp = set(&v.Hgatp, hg)
		vsst := rng.Uint64()&(uint64(1)<<1|1<<5|1<<8|1<<18|1<<19) | uint64(2)<<32
		s.Vsstatus = set(&v.Vsstatus, vsst)
		vsa := rng.Uint64() &^ (uint64(0xF) << 60)
		if rng.Intn(2) == 0 {
			vsa |= uint64(rv.SatpModeSv39) << 60
		}
		s.Vsatp = set(&v.Vsatp, vsa)
	} else {
		s.Hstatus = set(&v.Hstatus, 0)
		s.Hgatp = set(&v.Hgatp, 0)
		s.Vsstatus = set(&v.Vsstatus, 0)
		s.Vsatp = set(&v.Vsatp, 0)
	}
	s.Hedeleg = hMask(&v.Hedeleg, 0xB1FF)
	s.Hideleg = hMask(&v.Hideleg, rv.VSIntMask)
	s.Hie = hMask(&v.Hie, rv.VSIntMask)
	s.Hvip = hMask(&v.Hvip, rv.VSIntMask)
	s.Hgeie = hGen(&v.Hgeie)
	s.Htval = hGen(&v.Htval)
	s.Hip = hGen(&v.Hip)
	s.Htinst = hGen(&v.Htinst)
	s.Henvcfg = hGen(&v.Henvcfg)
	s.Vsie = hGen(&v.Vsie)
	s.Vsscratch = hGen(&v.Vsscratch)
	s.Vscause = hGen(&v.Vscause)
	s.Vstval = hGen(&v.Vstval)
	s.Vsip = hGen(&v.Vsip)
	if h.RefCfg.HasH {
		s.Hcounteren = set(&v.Hcounteren, rng.Uint64()&0xFFFF_FFFF)
		s.Vstvec = set(&v.Vstvec, rng.Uint64()&^3|uint64(rng.Intn(2)))
		s.Vsepc = set(&v.Vsepc, rng.Uint64()&^3)
	} else {
		s.Hcounteren = set(&v.Hcounteren, 0)
		s.Vstvec = set(&v.Vstvec, 0)
		s.Vsepc = set(&v.Vsepc, 0)
	}
	for _, n := range h.RefCfg.CustomCSRs {
		val := rng.Uint64()
		v.Custom[n] = val
		s.Custom[n] = val
	}

	// Virtual PMP file: unlock everything first (earlier states may have
	// locked entries), then write random values through the legalizing
	// setters. The write-path legalization itself is verified separately
	// by the CSR-instruction corpus.
	for i := 0; i < h.RefCfg.PMPCount; i++ {
		v.PMP.ForceCfg(i, 0)
	}
	for i := 0; i < h.RefCfg.PMPCount; i++ {
		v.PMP.SetAddr(i, rng.Uint64())
		v.PMP.SetCfg(i, uint8(rng.Uint32()))
		s.PmpCfg[i] = v.PMP.Cfg(i)
		s.PmpAddr[i] = v.PMP.Addr(i)
	}

	// Virtual interrupt state: software bits plus the virtual CLINT.
	mipSW := rng.Uint64() & 0x222
	v.MipSW = mipSW
	s.MipSW = mipSW
	vc := h.Mon.VClint()
	now := h.Machine.Clint.Time()
	if rng.Intn(2) == 0 {
		vc.SetVirtMtimecmp(0, now) // expired: vMTIP pending
	} else {
		vc.SetVirtMtimecmp(0, ^uint64(0))
	}
	vc.SetVirtMsip(0, rng.Intn(2) == 0)
	s.MipHW = vc.VirtPending(0)
	s.Time = now
	return s
}

// Compare checks state equivalence after a transition. vpc is the monitor's
// virtual PC; reads of free-running counters are excluded via skipRd.
func (h *Harness) Compare(s *refmodel.State, vpc uint64, skipRd uint32) error {
	v := h.Ctx.V
	hh := h.Machine.Harts[0]
	if uint8(h.Ctx.VirtMode) != s.Priv {
		return fmt.Errorf("virtual mode: vfm=%v ref=%d", h.Ctx.VirtMode, s.Priv)
	}
	if h.Ctx.VirtV != s.V {
		return fmt.Errorf("virtualization mode: vfm=%v ref=%v", h.Ctx.VirtV, s.V)
	}
	if vpc != s.PC {
		return fmt.Errorf("pc: vfm=%#x ref=%#x", vpc, s.PC)
	}
	for i := uint32(1); i < 32; i++ {
		if i == skipRd {
			continue
		}
		if hh.Regs[i] != s.Regs[i] {
			return fmt.Errorf("x%d: vfm=%#x ref=%#x", i, hh.Regs[i], s.Regs[i])
		}
	}
	if v.Mstatus != s.Status.Bits() {
		return fmt.Errorf("mstatus: vfm=%#x ref=%#x", v.Mstatus, s.Status.Bits())
	}
	type pair struct {
		name     string
		got, ref uint64
	}
	pairs := []pair{
		{"medeleg", v.Medeleg, s.Medeleg},
		{"mideleg", v.Mideleg, s.Mideleg},
		{"mie", v.Mie, s.Mie},
		{"mtvec", v.Mtvec, s.Mtvec},
		{"mcounteren", v.Mcounteren, s.Mcounteren},
		{"mscratch", v.Mscratch, s.Mscratch},
		{"mepc", v.Mepc, s.Mepc},
		{"mcause", v.Mcause, s.Mcause},
		{"mtval", v.Mtval, s.Mtval},
		{"mseccfg", v.Mseccfg, s.Mseccfg},
		{"mcountinhibit", v.Mcountinhibit, s.Mcountinhibit},
		{"menvcfg", v.Menvcfg, s.Menvcfg},
		{"stvec", v.Stvec, s.Stvec},
		{"scounteren", v.Scounteren, s.Scounteren},
		{"senvcfg", v.Senvcfg, s.Senvcfg},
		{"sscratch", v.Sscratch, s.Sscratch},
		{"sepc", v.Sepc, s.Sepc},
		{"scause", v.Scause, s.Scause},
		{"stval", v.Stval, s.Stval},
		{"satp", v.Satp, s.Satp},
		{"stimecmp", v.Stimecmp, s.Stimecmp},
		{"mip.sw", v.MipSW, s.MipSW},
		{"mtinst", v.Mtinst, s.Mtinst},
		{"mtval2", v.Mtval2, s.Mtval2},
	}
	if h.RefCfg.HasH {
		pairs = append(pairs,
			pair{"hstatus", v.Hstatus, s.Hstatus},
			pair{"hedeleg", v.Hedeleg, s.Hedeleg},
			pair{"hideleg", v.Hideleg, s.Hideleg},
			pair{"hie", v.Hie, s.Hie},
			pair{"hcounteren", v.Hcounteren, s.Hcounteren},
			pair{"hgeie", v.Hgeie, s.Hgeie},
			pair{"htval", v.Htval, s.Htval},
			pair{"hip", v.Hip, s.Hip},
			pair{"hvip", v.Hvip, s.Hvip},
			pair{"htinst", v.Htinst, s.Htinst},
			pair{"hgatp", v.Hgatp, s.Hgatp},
			pair{"henvcfg", v.Henvcfg, s.Henvcfg},
			pair{"vsstatus", v.Vsstatus, s.Vsstatus},
			pair{"vsie", v.Vsie, s.Vsie},
			pair{"vstvec", v.Vstvec, s.Vstvec},
			pair{"vsscratch", v.Vsscratch, s.Vsscratch},
			pair{"vsepc", v.Vsepc, s.Vsepc},
			pair{"vscause", v.Vscause, s.Vscause},
			pair{"vstval", v.Vstval, s.Vstval},
			pair{"vsip", v.Vsip, s.Vsip},
			pair{"vsatp", v.Vsatp, s.Vsatp},
		)
	}
	for _, p := range pairs {
		if p.got != p.ref {
			return fmt.Errorf("%s: vfm=%#x ref=%#x", p.name, p.got, p.ref)
		}
	}
	for i := 0; i < h.RefCfg.PMPCount; i++ {
		if v.PMP.Cfg(i) != byte(s.PmpCfg[i]) {
			return fmt.Errorf("pmpcfg[%d]: vfm=%#x ref=%#x", i, v.PMP.Cfg(i), s.PmpCfg[i])
		}
		if v.PMP.Addr(i) != s.PmpAddr[i] {
			return fmt.Errorf("pmpaddr[%d]: vfm=%#x ref=%#x", i, v.PMP.Addr(i), s.PmpAddr[i])
		}
	}
	for n, val := range s.Custom {
		if v.Custom[n] != val {
			return fmt.Errorf("custom %#x: vfm=%#x ref=%#x", n, v.Custom[n], val)
		}
	}
	return nil
}

// CheckEmulation runs one instruction through both models from the current
// (synchronized) state and compares outcomes. The state must have been set
// up by GenState; epc is the virtual PC of the instruction.
func (h *Harness) CheckEmulation(s *refmodel.State, raw uint32, epc uint64) error {
	s.PC = epc
	refmodel.HW(h.RefCfg, s, raw)

	var skipRd uint32
	ins := refmodel.Decode(raw)
	switch ins.Op {
	case refmodel.OpCSRRS, refmodel.OpCSRRC, refmodel.OpCSRRSI,
		refmodel.OpCSRRCI, refmodel.OpCSRRW, refmodel.OpCSRRWI:
		if isCounterCSR(ins.CSR) {
			skipRd = ins.Rd
			// Also align the reference's rd with the monitor's, since the
			// live counter value is unpredictable; the skip below prevents
			// comparison, and this keeps later instructions consistent.
		}
	}

	vpc := h.Mon.VerifEmulate(h.Ctx, raw, epc)
	if err := h.Compare(s, vpc, skipRd); err != nil {
		return fmt.Errorf("instr %#x (%s): %w", raw, describe(raw), err)
	}
	if skipRd != 0 {
		// Resynchronize the skipped register for subsequent checks.
		s.Regs[skipRd] = h.Machine.Harts[0].Regs[skipRd]
	}
	return nil
}

func describe(raw uint32) string {
	ins := refmodel.Decode(raw)
	switch ins.Op {
	case refmodel.OpMRET:
		return "mret"
	case refmodel.OpSRET:
		return "sret"
	case refmodel.OpWFI:
		return "wfi"
	case refmodel.OpECALL:
		return "ecall"
	case refmodel.OpEBREAK:
		return "ebreak"
	case refmodel.OpSFENCE:
		return "sfence.vma"
	case refmodel.OpFENCE:
		return "fence"
	case refmodel.OpFENCEI:
		return "fence.i"
	case refmodel.OpIllegal:
		return "illegal"
	}
	return fmt.Sprintf("csr-op f3=%d csr=%s rd=x%d rs1=x%d",
		(raw>>12)&7, rv.CSRName(ins.CSR), ins.Rd, ins.Rs1)
}

// CheckInterruptInjection compares the monitor's virtual-interrupt
// delivery decision and trap entry against the reference model's
// PendingInterrupt + TakeInterrupt from the same state. Delegated
// (supervisor) interrupts are the physical hardware's job during direct
// execution, so the monitor must leave the state untouched when the
// reference machine would deliver one.
func (h *Harness) CheckInterruptInjection(s *refmodel.State, vpc uint64) error {
	s.PC = vpc
	code := refmodel.PendingInterrupt(h.RefCfg, s)
	if code >= 0 && s.Mideleg>>code&1 == 0 {
		refmodel.TakeInterrupt(h.RefCfg, s, uint64(code))
	}
	got := h.Mon.VerifCheckVirtInterrupt(h.Ctx, vpc)
	return h.Compare(s, got, 0)
}
