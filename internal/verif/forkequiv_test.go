package verif

import "testing"

// TestForkEquivalenceSmoke runs a fixed-seed slice of the fork-equivalence
// suite; the full 400-case sweep is the scripts/verify.sh gate.
func TestForkEquivalenceSmoke(t *testing.T) {
	st, err := RunForkEquivalence([]string{"visionfive2", "p550"}, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cases < 50 {
		t.Fatalf("only %d cases ran", st.Cases)
	}
	for _, m := range st.Mismatches {
		t.Errorf("DIVERGENCE %s", m)
	}
	if st.ForkPages == 0 {
		t.Error("fork images carried no pages; the workload never touched RAM")
	}
}
