package verif

import (
	"flag"
	"math/rand"
	"testing"

	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/mem"
	"govfm/internal/pmp"
	"govfm/internal/refmodel"
	"govfm/internal/rv"
)

// The test suites below mirror the paper's Table 2 verification tasks:
// mret, sret, wfi, the instruction decoder, CSR reads, CSR writes, virtual
// interrupts, and end-to-end emulation — plus faithful execution of loads
// and stores (memory protection) and the §6.5 bug-class corpus.

// seedFlag offsets every randomized suite's seed, so a sweep can be rerun
// over fresh streams (-seed N) without losing per-suite determinism at the
// default of 0.
var seedFlag = flag.Int64("seed", 0, "offset added to each randomized suite's stream seed")

// newRng returns the rng for one randomized suite. Each suite has its own
// stream number so suites stay decorrelated; the effective seed is logged,
// which the test runner surfaces on failure (and under -v) so any failing
// run can be reproduced with -seed.
func newRng(t *testing.T, stream int64) *rand.Rand {
	seed := stream + *seedFlag
	t.Logf("randomized suite: stream %d, effective seed %d (rerun with -seed %d)",
		stream, seed, *seedFlag)
	return rand.New(rand.NewSource(seed))
}

func newHarness(t *testing.T, cfg *hart.Config) *Harness {
	t.Helper()
	h, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// encodeCSROp builds a Zicsr instruction word.
func encodeCSROp(f3 uint32, rd, rs1 uint32, csr uint16) uint32 {
	return uint32(csr)<<20 | rs1<<15 | f3<<12 | rd<<7 | 0x73
}

// interestingCSRs enumerates the virtual CSR space exhaustively: every CSR
// the virtual hardware implements, the virtual PMP registers, the platform
// custom CSRs, and a sample of unimplemented numbers.
func interestingCSRs(h *Harness) []uint16 {
	csrs := []uint16{
		rv.CSRMstatus, rv.CSRMisa, rv.CSRMedeleg, rv.CSRMideleg, rv.CSRMie,
		rv.CSRMtvec, rv.CSRMcounteren, rv.CSRMenvcfg, rv.CSRMcountinhibit,
		rv.CSRMscratch, rv.CSRMepc, rv.CSRMcause, rv.CSRMtval, rv.CSRMip,
		rv.CSRMseccfg, rv.CSRMvendorid, rv.CSRMarchid, rv.CSRMimpid,
		rv.CSRMhartid, rv.CSRMconfigptr, rv.CSRMcycle, rv.CSRMinstret,
		rv.CSRSstatus, rv.CSRSie, rv.CSRStvec, rv.CSRScounteren,
		rv.CSRSenvcfg, rv.CSRSscratch, rv.CSRSepc, rv.CSRScause,
		rv.CSRStval, rv.CSRSip, rv.CSRSatp,
		rv.CSRCycle, rv.CSRTime, rv.CSRInstret, rv.CSRStimecmp,
		rv.CSRMhpmcounter3, rv.CSRMhpmcounter31, rv.CSRMhpmevent3,
		rv.CSRHpmcounter3,
		// Unimplemented samples: hole in M space, F CSRs, debug CSRs.
		0x345, 0x001, 0x002, 0x003, 0x7B0, 0x5A8, 0x9FF,
	}
	for i := 0; i <= h.RefCfg.PMPCount; i++ { // one past the end on purpose
		csrs = append(csrs, rv.CSRPmpaddr0+uint16(i))
	}
	csrs = append(csrs, rv.CSRPmpcfg0, rv.CSRPmpcfg2, rv.CSRPmpcfg0+1)
	csrs = append(csrs, h.Machine.Cfg.CustomCSRs...)
	if h.Machine.Cfg.HasH {
		csrs = append(csrs,
			rv.CSRHstatus, rv.CSRHedeleg, rv.CSRHideleg, rv.CSRHie,
			rv.CSRHcounteren, rv.CSRHgeie, rv.CSRHtval, rv.CSRHip,
			rv.CSRHvip, rv.CSRHtinst, rv.CSRHenvcfg, rv.CSRHgatp,
			rv.CSRHgeip, rv.CSRMtinst, rv.CSRMtval2,
			rv.CSRVsstatus, rv.CSRVsie, rv.CSRVstvec, rv.CSRVsscratch,
			rv.CSRVsepc, rv.CSRVscause, rv.CSRVstval, rv.CSRVsip, rv.CSRVsatp)
	}
	return csrs
}

// valueCorpus are the operand values written through every CSR op.
var valueCorpus = []uint64{
	0, 1, 2, 3, 0x222, 0xAAA, 0xB3FF, 0x1F1F, ^uint64(0), 1 << 63,
	0x8000_0000, rv.SatpModeSv39 << 60, 5 << 60, 3 << 11, 2 << 11,
	0xFFFF_FFFF, 1<<17 | 1<<19,
}

func platforms() map[string]func() *hart.Config {
	return map[string]func() *hart.Config{
		"visionfive2": hart.VisionFive2,
		"p550":        hart.PremierP550,
		"rva23":       hart.RVA23,
	}
}

// TestFaithfulEmulationCSR exhaustively covers every CSR instruction form
// against every implemented (and some unimplemented) CSR, over a corpus of
// states and operand values.
func TestFaithfulEmulationCSR(t *testing.T) {
	for name, mk := range platforms() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, mk())
			rng := newRng(t, 1)
			csrs := interestingCSRs(h)
			ops := []uint32{rv.F3Csrrw, rv.F3Csrrs, rv.F3Csrrc,
				rv.F3Csrrwi, rv.F3Csrrsi, rv.F3Csrrci}
			checked := 0
			for _, csr := range csrs {
				for _, f3 := range ops {
					for _, regs := range [][2]uint32{{0, 0}, {5, 6}, {10, 0}, {0, 11}, {15, 15}} {
						rd, rs1 := regs[0], regs[1]
						s := h.GenState(rng)
						h.Ctx.VirtMode = rv.ModeM // production emulation context
						s.Priv = refmodel.M
						// Seed rs1 (or the zimm) with a corpus value.
						val := valueCorpus[checked%len(valueCorpus)]
						if f3 < rv.F3Csrrwi {
							h.Machine.Harts[0].SetReg(rs1, val)
							s.SetReg(rs1, val)
						}
						raw := encodeCSROp(f3, rd, rs1, csr)
						if err := h.CheckEmulation(s, raw, 0x1000); err != nil {
							t.Fatalf("csr %s f3=%d rd=%d rs1=%d: %v",
								rv.CSRName(csr), f3, rd, rs1, err)
						}
						checked++
					}
				}
			}
			t.Logf("%d CSR-instruction cases checked", checked)
		})
	}
}

// TestFaithfulEmulationPrivOps covers mret/sret/wfi/sfence/fence/ecall/
// ebreak across modes and status-bit combinations.
func TestFaithfulEmulationPrivOps(t *testing.T) {
	ops := map[string]uint32{
		"mret":    rv.InstrMret,
		"sret":    rv.InstrSret,
		"wfi":     rv.InstrWfi,
		"fence":   rv.InstrFence,
		"fence.i": rv.InstrFenceI,
		"ecall":   rv.InstrEcall,
		"ebreak":  rv.InstrEbreak,
		"sfence":  0x12000073,
	}
	for name, mk := range platforms() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, mk())
			rng := newRng(t, 2)
			for opName, raw := range ops {
				for i := 0; i < 200; i++ {
					s := h.GenState(rng)
					if err := h.CheckEmulation(s, raw, 0x2000); err != nil {
						t.Fatalf("%s (mode %v, round %d): %v",
							opName, h.Ctx.VirtMode, i, err)
					}
					if opName == "wfi" && h.Ctx.VirtMode == rv.ModeM {
						if s.WFI != h.Ctx.VirtWaiting {
							t.Fatalf("wfi wait state diverged: ref=%v vfm=%v",
								s.WFI, h.Ctx.VirtWaiting)
						}
					}
					h.Ctx.VirtWaiting = false
					h.Machine.Harts[0].Waiting = false
				}
			}
		})
	}
}

// TestFaithfulEmulationDecoder feeds random instruction words to both
// decoders via full emulation: agreement on illegality is part of the
// criterion (an instruction one side decodes and the other rejects would
// diverge in the resulting state).
func TestFaithfulEmulationDecoder(t *testing.T) {
	h := newHarness(t, hart.VisionFive2())
	rng := newRng(t, 3)
	for i := 0; i < 30000; i++ {
		s := h.GenState(rng)
		raw := rng.Uint32()
		if op := refmodel.Decode(raw).Op; op == refmodel.OpIllegal {
			// Plain loads/stores decode in the monitor (for MMIO/MPRV
			// emulation) but are not privileged instructions; the
			// emulator must inject illegal for them exactly as the
			// reference does. Nothing to skip.
			_ = op
		}
		if err := h.CheckEmulation(s, raw, 0x3000); err != nil {
			t.Fatalf("random instr %#x: %v", raw, err)
		}
	}
}

// TestFaithfulEmulationVirtualInterrupts checks the post-trap interrupt
// injection decision against the reference model's rules.
func TestFaithfulEmulationVirtualInterrupts(t *testing.T) {
	for name, mk := range platforms() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, mk())
			rng := newRng(t, 4)
			for i := 0; i < 5000; i++ {
				s := h.GenState(rng)
				if err := h.CheckInterruptInjection(s, 0x4000); err != nil {
					t.Fatalf("round %d (mode %v): %v", i, h.Ctx.VirtMode, err)
				}
			}
		})
	}
}

// TestFaithfulEmulationTrapEntry checks virtual trap re-injection against
// the reference trap-entry function for every exception cause.
func TestFaithfulEmulationTrapEntry(t *testing.T) {
	h := newHarness(t, hart.VisionFive2())
	rng := newRng(t, 5)
	causes := []uint64{
		rv.ExcInstrAddrMisaligned, rv.ExcInstrAccessFault, rv.ExcIllegalInstr,
		rv.ExcBreakpoint, rv.ExcLoadAddrMisaligned, rv.ExcLoadAccessFault,
		rv.ExcStoreAddrMisaligned, rv.ExcStoreAccessFault, rv.ExcEcallFromU,
		rv.ExcEcallFromS, rv.ExcEcallFromM, rv.ExcInstrPageFault,
		rv.ExcLoadPageFault, rv.ExcStorePageFault,
	}
	for _, cause := range causes {
		for i := 0; i < 100; i++ {
			s := h.GenState(rng)
			tval := rng.Uint64()
			epc := rng.Uint64() &^ 3
			s.PC = epc
			// Reference: raise the exception directly.
			refTakeException(s, cause, tval)
			got := h.Mon.VerifInjectTrap(h.Ctx, cause, tval, epc)
			if err := h.Compare(s, got, 0); err != nil {
				t.Fatalf("cause %d round %d: %v", cause, i, err)
			}
		}
	}
}

// refTakeException mirrors refmodel's unexported takeException using its
// public pieces: a synthetic instruction that raises the cause is not
// always available, so replicate via ecall/HW where possible and via
// TakeInterrupt-style entry otherwise. The refmodel exposes trap entry
// through HW for ecall/ebreak/illegal; for the remaining causes the test
// drives the same architectural entry computed here and cross-checked by
// TestTrapEntryHelperAgreesWithHW.
func refTakeException(s *refmodel.State, cause, tval uint64) {
	deleg := s.Priv != refmodel.M && s.Medeleg>>cause&1 != 0
	if deleg {
		s.Scause = cause
		s.Sepc = s.PC &^ 3
		s.Stval = tval
		s.Status.SPIE = s.Status.SIE
		s.Status.SIE = false
		s.Status.SPP = 0
		if s.Priv == refmodel.S {
			s.Status.SPP = 1
		}
		s.Priv = refmodel.S
		s.PC = s.Stvec &^ 3
		return
	}
	s.Mcause = cause
	s.Mepc = s.PC &^ 3
	s.Mtval = tval
	s.Status.MPIE = s.Status.MIE
	s.Status.MIE = false
	s.Status.MPP = s.Priv
	s.Priv = refmodel.M
	s.PC = s.Mtvec &^ 3
}

// TestTrapEntryHelperAgreesWithHW anchors refTakeException to the real
// reference model through the causes HW can raise directly.
func TestTrapEntryHelperAgreesWithHW(t *testing.T) {
	rng := newRng(t, 6)
	h := newHarness(t, hart.VisionFive2())
	for i := 0; i < 500; i++ {
		s := h.GenState(rng)
		s.PC = 0x8000
		ref := s.Clone()
		// ecall raises 8/9/11 depending on mode; tval 0.
		refmodel.HW(h.RefCfg, s, rv.InstrEcall)
		cause := uint64(rv.ExcEcallFromU)
		switch ref.Priv {
		case refmodel.S:
			cause = rv.ExcEcallFromS
		case refmodel.M:
			cause = rv.ExcEcallFromM
		}
		refTakeException(ref, cause, 0)
		if ref.Priv != s.Priv || ref.PC != s.PC || ref.Mcause != s.Mcause ||
			ref.Scause != s.Scause || ref.Status != s.Status ||
			ref.Mepc != s.Mepc || ref.Sepc != s.Sepc {
			t.Fatalf("helper diverges from HW at round %d", i)
		}
	}
}

// TestFaithfulEmulationEndToEnd is the full pipeline sweep: every op kind
// with every CSR and random states, across all three platforms (the
// paper's 118-minute Kani run, here as exhaustive enumeration).
func TestFaithfulEmulationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep skipped in -short mode")
	}
	for name, mk := range platforms() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, mk())
			rng := newRng(t, 7)
			csrs := interestingCSRs(h)
			privOps := []uint32{rv.InstrMret, rv.InstrSret, rv.InstrWfi,
				rv.InstrEcall, rv.InstrEbreak, rv.InstrFence, rv.InstrFenceI,
				0x12000073}
			n := 0
			for round := 0; round < 12; round++ {
				for _, csr := range csrs {
					f3 := []uint32{1, 2, 3, 5, 6, 7}[rng.Intn(6)]
					rd := uint32(rng.Intn(32))
					rs1 := uint32(rng.Intn(32))
					s := h.GenState(rng)
					h.Machine.Harts[0].Waiting = false
					if err := h.CheckEmulation(s, encodeCSROp(f3, rd, rs1, csr), 0x5000); err != nil {
						t.Fatalf("%s: %v", rv.CSRName(csr), err)
					}
					n++
				}
				for _, raw := range privOps {
					s := h.GenState(rng)
					h.Machine.Harts[0].Waiting = false
					if err := h.CheckEmulation(s, raw, 0x6000); err != nil {
						t.Fatalf("%#x: %v", raw, err)
					}
					n++
				}
			}
			t.Logf("%d end-to-end cases", n)
		})
	}
}

// --- Faithful execution (Definition 2): memory protection ---

// expectedAccess computes the reference verdict for a direct-execution
// access under the virtual PMP file.
func expectedAccess(h *Harness, s *refmodel.State, addr uint64, size int, acc int, virtPriv uint8) bool {
	return refmodel.PMPCheck(h.RefCfg, s, addr, size, acc, virtPriv)
}

func protectedAddr(addr uint64, size int) bool {
	for _, r := range core.ProtectedRegions() {
		if addr+uint64(size) > r[0] && addr < r[1] {
			return true
		}
	}
	return false
}

// TestFaithfulExecutionPMP: for random virtual PMP files, the physical
// file installed by the monitor must (a) always fault accesses to monitor
// memory and virtual devices, and (b) elsewhere agree exactly with the
// reference machine running the virtual file.
func TestFaithfulExecutionPMP(t *testing.T) {
	for name, mk := range platforms() {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, mk())
			rng := newRng(t, 8)
			phys := h.Machine.Harts[0].CSR.PMP

			addrCorpus := func(s *refmodel.State) []uint64 {
				addrs := []uint64{
					0, 8, core.MiralisBase - 8, core.MiralisBase,
					core.MiralisBase + core.MiralisSize - 8,
					core.MiralisBase + core.MiralisSize,
					core.FirmwareBase, core.OSBase, core.OSBase + 0x1000,
					hart.ClintBase - 8, hart.ClintBase, hart.ClintBase + 0xBFF8,
					hart.ClintBase + 0x10000, hart.UartBase, hart.DramBase,
				}
				for i := 0; i < h.RefCfg.PMPCount; i++ {
					lo, hi, ok := decodeVirtRegion(s, i)
					if ok {
						addrs = append(addrs, lo, lo+8, hi-8, hi, hi+8, lo-8)
					}
				}
				for i := 0; i < 32; i++ {
					addrs = append(addrs, rng.Uint64()%(1<<34)&^7)
				}
				return addrs
			}

			for round := 0; round < 120; round++ {
				s := h.GenState(rng)
				// vM-mode execution (no MPRV).
				h.Ctx.VirtMode = rv.ModeM
				h.Ctx.V.Mstatus &^= 1 << rv.MstatusMPRV
				h.Mon.VerifInstallPMP(h.Ctx, core.WorldFirmware)
				for _, addr := range addrCorpus(s) {
					for acc := 0; acc < 3; acc++ {
						got := phys.Check(addr, 8, accType(acc), rv.ModeU)
						var want bool
						if protectedAddr(addr, 8) {
							want = false
						} else {
							want = expectedAccess(h, s, addr, 8, acc, refmodel.M)
						}
						if got != want {
							t.Fatalf("fw world: addr %#x acc %d: phys=%v want=%v (round %d)",
								addr, acc, got, want, round)
						}
					}
				}
				// Direct execution (OS world): S-mode semantics.
				h.Ctx.VirtMode = rv.ModeS
				h.Mon.VerifInstallPMP(h.Ctx, core.WorldOS)
				for _, addr := range addrCorpus(s) {
					for acc := 0; acc < 3; acc++ {
						got := phys.Check(addr, 8, accType(acc), rv.ModeS)
						var want bool
						if protectedAddr(addr, 8) {
							want = false
						} else {
							want = expectedAccess(h, s, addr, 8, acc, refmodel.S)
						}
						if got != want {
							t.Fatalf("os world: addr %#x acc %d: phys=%v want=%v (round %d)",
								addr, acc, got, want, round)
						}
					}
				}
				// MPRV emulation window: all vM loads/stores must trap.
				h.Ctx.VirtMode = rv.ModeM
				h.Ctx.V.Mstatus |= 1 << rv.MstatusMPRV
				h.Ctx.V.SetMPP(rv.ModeS)
				h.Mon.VerifInstallPMP(h.Ctx, core.WorldFirmware)
				for _, addr := range addrCorpus(s)[:20] {
					if phys.Check(addr, 8, accType(0), rv.ModeU) {
						t.Fatalf("MPRV window: load at %#x must trap", addr)
					}
					if phys.Check(addr, 8, accType(1), rv.ModeU) {
						t.Fatalf("MPRV window: store at %#x must trap", addr)
					}
				}
			}
		})
	}
}

func accType(i int) (a mem.AccessType) {
	switch i {
	case 0:
		return mem.Read
	case 1:
		return mem.Write
	default:
		return mem.Exec
	}
}

// decodeVirtRegion decodes a virtual PMP entry from the reference state.
func decodeVirtRegion(s *refmodel.State, i int) (uint64, uint64, bool) {
	cfg := s.PmpCfg[i]
	addr := s.PmpAddr[i]
	switch cfg >> 3 & 3 {
	case 0:
		return 0, 0, false
	case 1:
		var base uint64
		if i > 0 {
			base = s.PmpAddr[i-1] << 2
		}
		if base >= addr<<2 {
			return 0, 0, false
		}
		return base, addr << 2, true
	case 2:
		return addr << 2, addr<<2 + 4, true
	default:
		g := 0
		for addr>>uint(g)&1 == 1 && g < 54 {
			g++
		}
		if g >= 54 {
			return 0, ^uint64(0), true
		}
		base := addr &^ (1<<uint(g) - 1) << 2
		return base, base + (8 << uint(g)), true
	}
}

// --- §6.5 bug-class regression corpus ---

// TestBugCorpusVirtualPCOverflow: emulating an instruction at the top of
// the address space must wrap, not panic, and match the reference.
func TestBugCorpusVirtualPCOverflow(t *testing.T) {
	h := newHarness(t, hart.VisionFive2())
	rng := newRng(t, 9)
	s := h.GenState(rng)
	h.Ctx.VirtMode = rv.ModeM
	s.Priv = refmodel.M
	epc := ^uint64(0) - 3 // PC + 4 wraps to 0
	raw := encodeCSROp(rv.F3Csrrs, 5, 0, rv.CSRMscratch)
	if err := h.CheckEmulation(s, raw, epc&^3); err != nil {
		t.Fatal(err)
	}
}

// TestBugCorpusVPMPOverrun: writes past the last virtual PMP entry must be
// rejected as illegal and must not touch any physical entry beyond the
// virtual window.
func TestBugCorpusVPMPOverrun(t *testing.T) {
	h := newHarness(t, hart.VisionFive2())
	rng := newRng(t, 10)
	s := h.GenState(rng)
	h.Ctx.VirtMode = rv.ModeM
	s.Priv = refmodel.M
	n := h.RefCfg.PMPCount
	raw := encodeCSROp(rv.F3Csrrw, 0, 5, rv.CSRPmpaddr0+uint16(n))
	h.Machine.Harts[0].SetReg(5, ^uint64(0))
	s.SetReg(5, ^uint64(0))
	if err := h.CheckEmulation(s, raw, 0x1000); err != nil {
		t.Fatal(err)
	}
	if s.PC == 0x1004 {
		t.Fatal("write past the virtual PMP window must trap as illegal")
	}
}

// TestBugCorpusReservedWR: the reserved W=1,R=0 combination must never be
// accepted into the virtual or physical PMP file.
func TestBugCorpusReservedWR(t *testing.T) {
	h := newHarness(t, hart.VisionFive2())
	rng := newRng(t, 11)
	s := h.GenState(rng)
	h.Ctx.VirtMode = rv.ModeM
	s.Priv = refmodel.M
	val := uint64(pmp.CfgW | pmp.ANapot<<3) // W without R
	h.Machine.Harts[0].SetReg(5, val)
	s.SetReg(5, val)
	raw := encodeCSROp(rv.F3Csrrw, 0, 5, rv.CSRPmpcfg0)
	if err := h.CheckEmulation(s, raw, 0x1000); err != nil {
		t.Fatal(err)
	}
	if h.Ctx.V.PMP.Cfg(0)&pmp.CfgW != 0 {
		t.Fatal("reserved W=1,R=0 leaked into the virtual PMP file")
	}
	h.Mon.VerifInstallPMP(h.Ctx, core.WorldOS)
	phys := h.Machine.Harts[0].CSR.PMP
	for i := 0; i < phys.NumEntries(); i++ {
		if phys.Cfg(i)&pmp.CfgW != 0 && phys.Cfg(i)&pmp.CfgR == 0 {
			t.Fatalf("reserved W=1,R=0 in physical entry %d", i)
		}
	}
}

// TestBugCorpusInterruptPriority: when several virtual interrupts pend,
// injection must follow MEI > MSI > MTI, matching the reference model.
func TestBugCorpusInterruptPriority(t *testing.T) {
	h := newHarness(t, hart.VisionFive2())
	rng := newRng(t, 12)
	s := h.GenState(rng)
	h.Ctx.VirtMode = rv.ModeM
	s.Priv = refmodel.M
	h.Ctx.V.Mstatus |= 1 << 3 // vMIE
	s.Status.MIE = true
	h.Ctx.V.Mie = rv.MIntMask
	s.Mie = rv.MIntMask
	h.Ctx.V.MipSW = 0
	s.MipSW = 0
	vc := h.Mon.VClint()
	vc.SetVirtMtimecmp(0, 0) // vMTIP
	vc.SetVirtMsip(0, true)  // vMSIP
	s.MipHW = vc.VirtPending(0)
	if err := h.CheckInterruptInjection(s, 0x9000); err != nil {
		t.Fatal(err)
	}
	if rv.CauseCode(h.Ctx.V.Mcause) != rv.IntMSoft {
		t.Fatalf("MSI must beat MTI, got cause %s", rv.CauseString(h.Ctx.V.Mcause))
	}
}

// TestBugCorpusInterruptLossAcrossWorldSwitch: a pending STIP installed by
// the fast path must survive an OS -> firmware -> OS round trip.
func TestBugCorpusInterruptLossAcrossWorldSwitch(t *testing.T) {
	h := newHarness(t, hart.VisionFive2())
	hh := h.Machine.Harts[0]
	// OS world with STIP pending.
	h.Ctx.VirtMode = rv.ModeS
	hh.CSR.SetMip(1 << rv.IntSTimer)
	if hh.CSR.Mip(0)&(1<<rv.IntSTimer) == 0 {
		t.Fatal("precondition: STIP set")
	}
	// Re-inject a trap into the firmware (world switch in), then emulate
	// the firmware's mret back out (world switch out).
	h.Mon.VerifInjectTrap(h.Ctx, rv.ExcEcallFromS, 0, 0x8000_0000)
	h.Mon.VerifWorldSwitch(h.Ctx, core.WorldFirmware)
	if hh.CSR.Mip(0)&(1<<rv.IntSTimer) != 0 {
		t.Fatal("physical STIP must be hidden while the firmware world runs")
	}
	h.Mon.VerifEmulate(h.Ctx, rv.InstrMret, 0x8010_0000)
	if h.Ctx.VirtMode != rv.ModeS {
		t.Fatalf("mret must return to the OS world, mode %v", h.Ctx.VirtMode)
	}
	h.Mon.VerifWorldSwitch(h.Ctx, core.WorldOS)
	if hh.CSR.Mip(0)&(1<<rv.IntSTimer) == 0 {
		t.Fatal("STIP lost across the OS->firmware->OS world-switch round trip")
	}
}

// TestPMPImplementationsAgree differentially checks the two independently
// written PMP matchers — the simulator's (internal/pmp) and the reference
// model's (refmodel.PMPCheck) — over random register files and accesses.
// This is the substrate-level analog of faithful execution: the oracle
// itself is cross-validated.
func TestPMPImplementationsAgree(t *testing.T) {
	rng := newRng(t, 99)
	for round := 0; round < 400; round++ {
		n := 1 + rng.Intn(16)
		f := pmp.NewFile(n)
		s := refmodel.NewState()
		c := &refmodel.Config{PMPCount: n}
		for i := 0; i < n; i++ {
			addr := rng.Uint64() >> uint(rng.Intn(40))
			cfg := uint8(rng.Uint32())
			f.SetAddr(i, addr)
			f.SetCfg(i, cfg)
			s.PmpAddr[i] = f.Addr(i)
			s.PmpCfg[i] = f.Cfg(i)
		}
		for k := 0; k < 200; k++ {
			addr := rng.Uint64() >> uint(rng.Intn(40))
			size := []int{1, 2, 4, 8}[rng.Intn(4)]
			accI := rng.Intn(3)
			mode := []rv.Mode{rv.ModeU, rv.ModeS, rv.ModeM}[rng.Intn(3)]
			got := f.Check(addr, size, mem.AccessType(accI), mode)
			want := refmodel.PMPCheck(c, s, addr, size, accI, uint8(mode))
			if got != want {
				t.Fatalf("round %d: addr=%#x size=%d acc=%d mode=%v: pmp=%v ref=%v\ncfg=%v addr=%v",
					round, addr, size, accI, mode, got, want,
					s.PmpCfg[:n], s.PmpAddr[:n])
			}
		}
	}
}
