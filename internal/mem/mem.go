// Package mem implements the physical address space of the simulated
// machine: a DRAM region plus memory-mapped I/O devices dispatched by
// address range. All accesses are little-endian, as mandated for RISC-V
// memory.
//
// RAM is backed by a two-level, generation-tagged page table (4 KiB pages
// grouped into 4 MiB chunks) rather than a flat byte slice. Pages are
// copy-on-write: Bus.Snapshot captures all RAM in O(chunk directory) time
// by sharing the page objects, and a bus spawned from a snapshot (a fork)
// shares every clean page with its ancestor. A page is written in place
// only when its (owner, generation) tag matches the writing bus; any
// mismatch breaks the page off the shared backing first. The break-off
// check lives in the same write funnel (Store, WriteBytes, Port.Commit)
// that fires the page-watch notifications, so copy-on-first-write rides
// the exact choke point the host fast paths already trust.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
)

// AccessType distinguishes the three architectural access kinds, matching
// the PMP permission bits and page-table permission checks.
type AccessType uint8

const (
	Read AccessType = iota
	Write
	Exec
)

func (a AccessType) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Exec:
		return "exec"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(a))
	}
}

// Device is a memory-mapped peripheral. Offsets are relative to the device's
// base address. Devices are accessed with naturally aligned widths of
// 1, 2, 4, or 8 bytes; a device may reject an access by returning false.
type Device interface {
	// Name identifies the device in traces and error messages.
	Name() string
	// Load reads size bytes at offset.
	Load(offset uint64, size int) (uint64, bool)
	// Store writes size bytes at offset.
	Store(offset uint64, size int, value uint64) bool
}

// RAM page-table geometry: 4 KiB pages, 1024 pages (4 MiB) per chunk.
const (
	pageShift  = 12
	pageSize   = 1 << pageShift
	pageMask   = pageSize - 1
	chunkShift = pageShift + 10
	chunkPages = 1 << (chunkShift - pageShift)
)

// ramPage is one 4 KiB page of RAM. The (owner, gen) tag records which bus
// allocated it and during which snapshot generation; the page may be
// written in place only by that bus while its generation is still current.
// Every other writer — the same bus after a snapshot, or a forked child —
// must break a copy off first. Pages whose tag is stale are therefore
// immutable forever, which is what makes sharing them across concurrently
// executing machines safe without any per-access synchronization.
type ramPage struct {
	owner, gen uint64
	data       [pageSize]byte
}

// ramChunk is a directory of 1024 page pointers, tagged like a page so the
// pointer array itself is copy-on-write too. A nil page pointer reads as
// zeros (RAM starts zeroed and untouched pages are never materialized).
type ramChunk struct {
	owner, gen uint64
	pages      [chunkPages]*ramPage
}

// Region is a mapped address range.
type Region struct {
	Base uint64
	Size uint64
	Dev  Device // nil for RAM regions

	// dir is the chunk directory of a RAM region (nil entries are
	// all-zero 4 MiB spans). It belongs to exactly one bus; snapshots and
	// forks copy the directory, never share it.
	dir []*ramChunk
	bus *Bus

	// watch is a per-4KiB-page bitmap of pages some PageWatcher has asked
	// to be told about. A bit is set by WatchPage, cleared when the page is
	// written (the watchers are notified once and must re-arm on their next
	// cache fill). Allocated eagerly for RAM regions so that bits can be
	// armed with atomic ops from concurrently executing hart slices; writes
	// (and hence noteWrite) only ever happen while the harts are quiesced.
	// Watch bits are host-cache state: they are per-bus and never travel
	// with snapshots.
	watch []uint64
}

// page returns the page containing byte offset off, or nil for an
// untouched (all-zero) page. Safe for concurrent readers: the directory
// only changes while the machine is quiesced.
func (r *Region) page(off uint64) *ramPage {
	c := r.dir[off>>chunkShift]
	if c == nil {
		return nil
	}
	return c.pages[(off>>pageShift)&(chunkPages-1)]
}

// writablePage returns the page containing off, breaking it (and its
// chunk) off the shared copy-on-write backing if its generation tag does
// not match the owning bus. Must only be called while the machine is
// quiesced (direct-mode stores, barrier commits, image loads).
func (r *Region) writablePage(off uint64) *ramPage {
	b := r.bus
	ci := off >> chunkShift
	c := r.dir[ci]
	if c == nil || c.owner != b.id || c.gen != b.gen {
		nc := &ramChunk{owner: b.id, gen: b.gen}
		if c != nil {
			nc.pages = c.pages
		}
		c = nc
		r.dir[ci] = c
	}
	pi := (off >> pageShift) & (chunkPages - 1)
	pg := c.pages[pi]
	if pg == nil || pg.owner != b.id || pg.gen != b.gen {
		np := &ramPage{owner: b.id, gen: b.gen}
		if pg != nil {
			np.data = pg.data
			b.cowCopied++
		}
		pg = np
		c.pages[pi] = pg
		b.touched++
	}
	return pg
}

// loadRAM reads size little-endian bytes at byte offset off of a RAM region.
func (r *Region) loadRAM(off uint64, size int) (uint64, bool) {
	if (off&pageMask)+uint64(size) <= pageSize {
		pg := r.page(off)
		if pg == nil {
			switch size {
			case 1, 2, 4, 8:
				return 0, true
			}
			return 0, false
		}
		b := off & pageMask
		switch size {
		case 1:
			return uint64(pg.data[b]), true
		case 2:
			return uint64(binary.LittleEndian.Uint16(pg.data[b:])), true
		case 4:
			return uint64(binary.LittleEndian.Uint32(pg.data[b:])), true
		case 8:
			return binary.LittleEndian.Uint64(pg.data[b:]), true
		}
		return 0, false
	}
	// Page-straddling access (hardware-handled misalignment): byte loop.
	switch size {
	case 2, 4, 8:
	default:
		return 0, false
	}
	var v uint64
	for i := 0; i < size; i++ {
		if pg := r.page(off + uint64(i)); pg != nil {
			v |= uint64(pg.data[(off+uint64(i))&pageMask]) << (8 * uint(i))
		}
	}
	return v, true
}

// storeRAM writes size little-endian bytes at byte offset off of a RAM
// region, breaking pages off the shared backing as needed. It does not
// fire write watches; callers do.
func (r *Region) storeRAM(off uint64, size int, value uint64) bool {
	if (off&pageMask)+uint64(size) <= pageSize {
		b := off & pageMask
		var pg *ramPage
		switch size {
		case 1, 2, 4, 8:
			pg = r.writablePage(off)
		default:
			return false
		}
		switch size {
		case 1:
			pg.data[b] = byte(value)
		case 2:
			binary.LittleEndian.PutUint16(pg.data[b:], uint16(value))
		case 4:
			binary.LittleEndian.PutUint32(pg.data[b:], uint32(value))
		case 8:
			binary.LittleEndian.PutUint64(pg.data[b:], value)
		}
		return true
	}
	switch size {
	case 2, 4, 8:
	default:
		return false
	}
	for i := 0; i < size; i++ {
		pg := r.writablePage(off + uint64(i))
		pg.data[(off+uint64(i))&pageMask] = byte(value >> (8 * uint(i)))
	}
	return true
}

// Contains reports whether addr (with an access of size bytes) falls fully
// inside the region.
func (r *Region) Contains(addr uint64, size int) bool {
	return addr >= r.Base && addr-r.Base+uint64(size) <= r.Size
}

// PageWatcher is notified when a watched RAM page is written. Harts
// register as watchers to invalidate host-side caches (predecoded
// instructions, TLB entries whose page tables live on the page) when
// anything — another hart, DMA, a fault injector — mutates the page.
type PageWatcher interface {
	InvalidatePhysPage(pageBase uint64)
}

// busIDs hands out a process-unique identity per Bus. Identities are never
// reused, so a page tagged by a dead bus can never be mistaken for
// writable by a live one.
var busIDs atomic.Uint64

// Bus is the physical address space. It is not safe for concurrent use; the
// machine serializes hart steps (see internal/hart.Machine). Distinct buses
// forked from a common snapshot may run fully in parallel: the pages they
// share are immutable, and each bus breaks private copies into its own
// directory before writing.
type Bus struct {
	// id is this bus's process-unique copy-on-write identity; gen counts
	// the snapshots taken (each Snapshot/LoadSnapshot seals every page
	// created before it).
	id, gen uint64

	regions []*Region // sorted by base
	last    *Region   // 1-entry find cache; most accesses hit one region

	watchers []PageWatcher

	// touched counts pages made writable since the last snapshot (the
	// O(pages-touched) bound on the next Snapshot's sharing cost);
	// cowCopied counts pages ever broken off a shared ancestor.
	touched   uint64
	cowCopied uint64

	// failDev makes the next N device accesses return a bus error, as a
	// flaky peripheral would. Fault-injection harnesses arm it through
	// InjectDeviceFaults; RAM accesses are never affected.
	failDev int
}

// AddPageWatcher registers w for watched-page write notifications.
func (b *Bus) AddPageWatcher(w PageWatcher) { b.watchers = append(b.watchers, w) }

// WatchPage arms write notification for the 4KiB page containing pa. It
// returns false when pa is not RAM-backed (MMIO contents cannot be watched
// and must not be cached by callers).
func (b *Bus) WatchPage(pa uint64) bool {
	r := b.find(pa&^4095, 1)
	if r == nil || r.Dev != nil {
		return false
	}
	p := (pa - r.Base) >> 12
	atomicSetBit(&r.watch[p/64], 1<<(p%64))
	return true
}

// atomicSetBit ORs mask into *word with a CAS loop. Hart slices arm watch
// bits concurrently during parallel execution; writes that clear them are
// barrier-ordered, so a set-set race is the only one possible.
func atomicSetBit(word *uint64, mask uint64) {
	for {
		old := atomic.LoadUint64(word)
		if old&mask == mask || atomic.CompareAndSwapUint64(word, old, old|mask) {
			return
		}
	}
}

// IsRAM reports whether [addr, addr+size) is fully RAM-backed.
func (b *Bus) IsRAM(addr uint64, size int) bool {
	r := b.find(addr, size)
	return r != nil && r.Dev == nil
}

// noteWrite fires watchers for every watched page the write [off, off+size)
// touches, clearing the watch bits (watchers re-arm on their next fill).
func (b *Bus) noteWrite(r *Region, off uint64, size int) {
	p1 := off >> 12
	p2 := (off + uint64(size) - 1) >> 12
	for p := p1; p <= p2; p++ {
		if r.watch[p/64]&(1<<(p%64)) == 0 {
			continue
		}
		r.watch[p/64] &^= 1 << (p % 64)
		page := r.Base + p<<12
		for _, w := range b.watchers {
			w.InvalidatePhysPage(page)
		}
	}
}

// InjectDeviceFaults arms the bus to reject the next n device (MMIO)
// accesses as bus errors. RAM is unaffected. Passing 0 disarms.
func (b *Bus) InjectDeviceFaults(n int) { b.failDev = n }

// takeDevFault consumes one armed device fault, if any.
func (b *Bus) takeDevFault() bool {
	if b.failDev > 0 {
		b.failDev--
		return true
	}
	return false
}

// NewBus returns an empty address space with a fresh copy-on-write
// identity.
func NewBus() *Bus { return &Bus{id: busIDs.Add(1)} }

// AddRAM maps size bytes of zeroed RAM at base. Pages materialize on first
// write; untouched spans cost no host memory.
func (b *Bus) AddRAM(base, size uint64) error {
	return b.add(&Region{
		Base: base, Size: size,
		dir:   make([]*ramChunk, (size+(1<<chunkShift)-1)>>chunkShift),
		watch: make([]uint64, (size>>12)/64+1),
	})
}

// AddDevice maps dev at [base, base+size).
func (b *Bus) AddDevice(base, size uint64, dev Device) error {
	return b.add(&Region{Base: base, Size: size, Dev: dev})
}

func (b *Bus) add(r *Region) error {
	if r.Size == 0 {
		return fmt.Errorf("mem: empty region at %#x", r.Base)
	}
	if r.Base+r.Size < r.Base {
		return fmt.Errorf("mem: region at %#x wraps the address space", r.Base)
	}
	for _, o := range b.regions {
		if r.Base < o.Base+o.Size && o.Base < r.Base+r.Size {
			name := "ram"
			if o.Dev != nil {
				name = o.Dev.Name()
			}
			return fmt.Errorf("mem: region %#x+%#x overlaps %s at %#x", r.Base, r.Size, name, o.Base)
		}
	}
	r.bus = b
	b.regions = append(b.regions, r)
	sort.Slice(b.regions, func(i, j int) bool { return b.regions[i].Base < b.regions[j].Base })
	return nil
}

// Regions returns the mapped regions in address order.
func (b *Bus) Regions() []*Region { return b.regions }

// find locates the region containing [addr, addr+size).
func (b *Bus) find(addr uint64, size int) *Region {
	// Accesses cluster heavily in one region (DRAM), so try the last hit
	// before the binary search.
	if r := b.last; r != nil && r.Contains(addr, size) {
		return r
	}
	r := b.lookup(addr, size)
	if r != nil {
		b.last = r
	}
	return r
}

// lookup is find without the shared 1-entry cache: safe for concurrent
// readers (the region list is immutable once the machine runs). Per-hart
// Ports keep their own cache in front of it.
func (b *Bus) lookup(addr uint64, size int) *Region {
	// Binary search for the last region with Base <= addr.
	i := sort.Search(len(b.regions), func(i int) bool { return b.regions[i].Base > addr })
	if i == 0 {
		return nil
	}
	r := b.regions[i-1]
	if !r.Contains(addr, size) {
		return nil
	}
	return r
}

// Load reads size bytes (1, 2, 4, or 8) at physical address addr.
// The boolean result is false on an access fault (unmapped address or
// device rejection) — the architectural equivalent of a bus error.
func (b *Bus) Load(addr uint64, size int) (uint64, bool) {
	r := b.find(addr, size)
	if r == nil {
		return 0, false
	}
	if r.Dev != nil {
		if b.takeDevFault() {
			return 0, false
		}
		return r.Dev.Load(addr-r.Base, size)
	}
	return r.loadRAM(addr-r.Base, size)
}

// Store writes size bytes (1, 2, 4, or 8) at physical address addr.
func (b *Bus) Store(addr uint64, size int, value uint64) bool {
	r := b.find(addr, size)
	if r == nil {
		return false
	}
	if r.Dev != nil {
		if b.takeDevFault() {
			return false
		}
		return r.Dev.Store(addr-r.Base, size, value)
	}
	off := addr - r.Base
	if !r.storeRAM(off, size, value) {
		return false
	}
	b.noteWrite(r, off, size)
	return true
}

// WriteBytes copies p into RAM starting at addr. It is used to load images
// and fails if the range is not fully RAM-backed.
func (b *Bus) WriteBytes(addr uint64, p []byte) error {
	for len(p) > 0 {
		r := b.find(addr, 1)
		if r == nil || r.Dev != nil {
			return fmt.Errorf("mem: WriteBytes: %#x is not RAM", addr)
		}
		off := addr - r.Base
		n := pageSize - int(off&pageMask) // bytes left in this page
		if rem := int(r.Size - off); n > rem {
			n = rem
		}
		if n > len(p) {
			n = len(p)
		}
		pg := r.writablePage(off)
		copy(pg.data[off&pageMask:], p[:n])
		b.noteWrite(r, off, n)
		p = p[n:]
		addr += uint64(n)
	}
	return nil
}

// ReadBytes copies n RAM bytes starting at addr into a fresh slice.
func (b *Bus) ReadBytes(addr uint64, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for n > 0 {
		r := b.find(addr, 1)
		if r == nil || r.Dev != nil {
			return nil, fmt.Errorf("mem: ReadBytes: %#x is not RAM", addr)
		}
		off := addr - r.Base
		take := pageSize - int(off&pageMask)
		if avail := int(r.Size - off); take > avail {
			take = avail
		}
		if take > n {
			take = n
		}
		if pg := r.page(off); pg != nil {
			out = append(out, pg.data[off&pageMask:int(off&pageMask)+take]...)
		} else {
			out = append(out, make([]byte, take)...)
		}
		addr += uint64(take)
		n -= take
	}
	return out, nil
}
