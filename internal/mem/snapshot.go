package mem

import "fmt"

// RAMSnapshot is an immutable page-shared image of every RAM region on a
// bus. Taking one costs O(chunk directory + pages touched since the last
// snapshot), not O(RAM): the snapshot shares the page objects with the bus
// it came from, and the generation bump performed by Snapshot guarantees
// neither the origin bus nor any bus the snapshot is later loaded into can
// write those pages in place. A snapshot may be loaded into any number of
// buses, concurrently with the origin machine running.
type RAMSnapshot struct {
	regions []ramRegionSnap
}

type ramRegionSnap struct {
	base, size uint64
	dir        []*ramChunk
}

// Pages returns the number of materialized (non-zero-backed) pages the
// snapshot references. It walks the chunk directories; intended for
// metrics, not hot paths.
func (s *RAMSnapshot) Pages() int {
	n := 0
	for _, rs := range s.regions {
		for _, c := range rs.dir {
			if c == nil {
				continue
			}
			for _, pg := range c.pages {
				if pg != nil {
					n++
				}
			}
		}
	}
	return n
}

// Snapshot captures all RAM regions by sharing their pages and seals the
// current generation: every page that existed before the call becomes
// immutable, and the bus's next write to each breaks off a private copy.
// Must be called with the machine quiesced (no hart slices in flight).
func (b *Bus) Snapshot() *RAMSnapshot {
	s := &RAMSnapshot{}
	for _, r := range b.regions {
		if r.Dev != nil {
			continue
		}
		dir := make([]*ramChunk, len(r.dir))
		copy(dir, r.dir)
		s.regions = append(s.regions, ramRegionSnap{base: r.Base, size: r.Size, dir: dir})
	}
	b.gen++
	b.touched = 0
	return s
}

// LoadSnapshot replaces the contents of the bus's RAM regions with s. The
// bus's RAM layout must match the snapshot's exactly. The installed pages
// stay shared with every other holder of the snapshot — they carry foreign
// tags, so this bus copy-on-writes them like a forked child. Watch bits
// and host-side caches are NOT touched; callers that kept caches across
// the load must flush them. Must be called with the machine quiesced.
func (b *Bus) LoadSnapshot(s *RAMSnapshot) error {
	i := 0
	for _, r := range b.regions {
		if r.Dev != nil {
			continue
		}
		if i >= len(s.regions) || s.regions[i].base != r.Base || s.regions[i].size != r.Size {
			return fmt.Errorf("mem: LoadSnapshot: RAM layout mismatch at region %#x", r.Base)
		}
		dir := make([]*ramChunk, len(s.regions[i].dir))
		copy(dir, s.regions[i].dir)
		r.dir = dir
		i++
	}
	if i != len(s.regions) {
		return fmt.Errorf("mem: LoadSnapshot: snapshot has %d RAM regions, bus has %d", len(s.regions), i)
	}
	b.gen++
	b.touched = 0
	return nil
}

// TouchedPages returns the number of pages made privately writable since
// the last Snapshot/LoadSnapshot — the sharing cost the next Snapshot
// will pay.
func (b *Bus) TouchedPages() uint64 { return b.touched }

// COWCopies returns the cumulative number of pages broken off a shared
// ancestor (copy-on-first-write events, excluding fresh zero pages).
func (b *Bus) COWCopies() uint64 { return b.cowCopied }
