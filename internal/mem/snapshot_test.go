package mem

import (
	"sync"
	"testing"
)

// newTestBus returns a bus with one RAM region spanning several chunks.
func newTestBus(t *testing.T) *Bus {
	t.Helper()
	b := NewBus()
	if err := b.AddRAM(0x8000_0000, 8<<20); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSnapshotForkIsolation(t *testing.T) {
	parent := newTestBus(t)
	parent.Store(0x8000_0000, 8, 0x1111)
	parent.Store(0x8040_0000, 8, 0x2222) // second chunk
	snap := parent.Snapshot()

	child := newTestBus(t)
	if err := child.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	// Child sees the snapshot content.
	if v, _ := child.Load(0x8000_0000, 8); v != 0x1111 {
		t.Fatalf("child initial = %#x, want 0x1111", v)
	}
	// Parent writes after the snapshot must not leak into the child, even
	// on the very pages the snapshot shares.
	parent.Store(0x8000_0000, 8, 0xAAAA)
	if v, _ := child.Load(0x8000_0000, 8); v != 0x1111 {
		t.Fatalf("parent write leaked into child: %#x", v)
	}
	// Child writes must not leak into the parent.
	child.Store(0x8040_0000, 8, 0xBBBB)
	if v, _ := parent.Load(0x8040_0000, 8); v != 0x2222 {
		t.Fatalf("child write leaked into parent: %#x", v)
	}
	// A second child of the same snapshot sees pristine snapshot state.
	child2 := newTestBus(t)
	if err := child2.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := child2.Load(0x8000_0000, 8); v != 0x1111 {
		t.Fatalf("second child = %#x, want 0x1111", v)
	}
	if v, _ := child2.Load(0x8040_0000, 8); v != 0x2222 {
		t.Fatalf("second child = %#x, want 0x2222", v)
	}
}

func TestSnapshotOfSnapshotChain(t *testing.T) {
	b := newTestBus(t)
	b.Store(0x8000_0000, 8, 1)
	s1 := b.Snapshot()
	b.Store(0x8000_0000, 8, 2)
	s2 := b.Snapshot()
	b.Store(0x8000_0000, 8, 3)

	for i, want := range map[*RAMSnapshot]uint64{s1: 1, s2: 2} {
		c := newTestBus(t)
		if err := c.LoadSnapshot(i); err != nil {
			t.Fatal(err)
		}
		if v, _ := c.Load(0x8000_0000, 8); v != want {
			t.Fatalf("snapshot chain: got %#x want %#x", v, want)
		}
	}
	if v, _ := b.Load(0x8000_0000, 8); v != 3 {
		t.Fatalf("origin = %v, want 3", v)
	}
}

func TestLoadSnapshotLayoutMismatch(t *testing.T) {
	b := newTestBus(t)
	s := b.Snapshot()
	other := NewBus()
	if err := other.AddRAM(0x8000_0000, 4<<20); err != nil {
		t.Fatal(err)
	}
	if err := other.LoadSnapshot(s); err == nil {
		t.Fatal("layout mismatch must be rejected")
	}
	empty := NewBus()
	if err := empty.LoadSnapshot(s); err == nil {
		t.Fatal("missing region must be rejected")
	}
}

func TestTouchedPagesAccounting(t *testing.T) {
	b := newTestBus(t)
	b.Snapshot()
	if b.TouchedPages() != 0 {
		t.Fatalf("touched after snapshot = %d", b.TouchedPages())
	}
	b.Store(0x8000_0000, 8, 1)
	b.Store(0x8000_0FF8, 8, 2) // same page
	b.Store(0x8000_1000, 8, 3) // next page
	if got := b.TouchedPages(); got != 2 {
		t.Fatalf("touched = %d, want 2", got)
	}
	s := b.Snapshot()
	if b.TouchedPages() != 0 {
		t.Fatalf("touched must reset on snapshot")
	}
	if s.Pages() != 2 {
		t.Fatalf("snapshot pages = %d, want 2", s.Pages())
	}
	// First write after the snapshot breaks a copy off the sealed page.
	pre := b.COWCopies()
	b.Store(0x8000_0000, 8, 4)
	if b.COWCopies() != pre+1 {
		t.Fatalf("COWCopies = %d, want %d", b.COWCopies(), pre+1)
	}
}

func TestCrossPageAccesses(t *testing.T) {
	b := newTestBus(t)
	// An 8-byte store straddling a page boundary (hardware-handled
	// misalignment) must round-trip, including across the COW break.
	addr := uint64(0x8000_0FFC)
	if !b.Store(addr, 8, 0x1122334455667788) {
		t.Fatal("cross-page store failed")
	}
	if v, ok := b.Load(addr, 8); !ok || v != 0x1122334455667788 {
		t.Fatalf("cross-page load = %#x", v)
	}
	snap := b.Snapshot()
	b.Store(addr, 8, 0x99AABBCCDDEEFF00)
	c := newTestBus(t)
	if err := c.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Load(addr, 8); v != 0x1122334455667788 {
		t.Fatalf("child cross-page = %#x", v)
	}
	// Reads of never-touched pages are zero without materializing them.
	if v, ok := b.Load(0x8070_0000, 8); !ok || v != 0 {
		t.Fatalf("untouched page load = %#x ok=%v", v, ok)
	}
	if b.TouchedPages() != 2 {
		t.Fatalf("load materialized a page: touched=%d", b.TouchedPages())
	}
}

// TestConcurrentForkFamily is the COW race gate: a parent and several
// children forked from one snapshot all execute at once, the parent
// breaking pages off the very backing the children are reading. Run under
// -race this proves the fork family shares no mutable state.
func TestConcurrentForkFamily(t *testing.T) {
	parent := newTestBus(t)
	for pg := uint64(0); pg < 64; pg++ {
		parent.Store(0x8000_0000+pg<<12, 8, pg+1)
	}
	snap := parent.Snapshot()

	const children = 4
	var wg sync.WaitGroup
	for c := 0; c < children; c++ {
		child := newTestBus(t)
		if err := child.LoadSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(b *Bus, id uint64) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				for pg := uint64(0); pg < 64; pg++ {
					if v, _ := b.Load(0x8000_0000+pg<<12, 8); v != pg+1 && v != id {
						t.Errorf("child saw torn value %#x", v)
						return
					}
				}
				b.Store(0x8000_0000+(id+uint64(iter))%64<<12, 8, id)
			}
		}(child, uint64(1000+c))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 200; iter++ {
			for pg := uint64(0); pg < 64; pg++ {
				parent.Store(0x8000_0000+pg<<12, 8, uint64(iter)<<32|pg)
			}
		}
	}()
	wg.Wait()
}
