package mem

import (
	"testing"
	"testing/quick"
)

type stubDev struct {
	name    string
	lastOff uint64
	val     uint64
	reject  bool
}

func (d *stubDev) Name() string { return d.name }
func (d *stubDev) Load(off uint64, size int) (uint64, bool) {
	if d.reject {
		return 0, false
	}
	d.lastOff = off
	return d.val, true
}
func (d *stubDev) Store(off uint64, size int, v uint64) bool {
	if d.reject {
		return false
	}
	d.lastOff = off
	d.val = v
	return true
}

func TestRAMLoadStoreWidths(t *testing.T) {
	b := NewBus()
	if err := b.AddRAM(0x8000_0000, 0x1000); err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 2, 4, 8} {
		want := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if size == 8 {
			want = 0x1122334455667788
		}
		if !b.Store(0x8000_0100, size, 0x1122334455667788) {
			t.Fatalf("store size %d failed", size)
		}
		got, ok := b.Load(0x8000_0100, size)
		if !ok || got != want {
			t.Errorf("size %d: got %#x want %#x", size, got, want)
		}
	}
}

func TestLittleEndianLayout(t *testing.T) {
	b := NewBus()
	if err := b.AddRAM(0, 16); err != nil {
		t.Fatal(err)
	}
	b.Store(0, 4, 0xAABBCCDD)
	lo, _ := b.Load(0, 1)
	hi, _ := b.Load(3, 1)
	if lo != 0xDD || hi != 0xAA {
		t.Errorf("little endian violated: lo=%#x hi=%#x", lo, hi)
	}
}

func TestUnmappedFaults(t *testing.T) {
	b := NewBus()
	if err := b.AddRAM(0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Load(0xFFF, 1); ok {
		t.Error("load below region must fault")
	}
	if _, ok := b.Load(0x2000, 1); ok {
		t.Error("load past region must fault")
	}
	// Straddling the end of the region must fault.
	if _, ok := b.Load(0x1FFD, 8); ok {
		t.Error("straddling load must fault")
	}
	if b.Store(0x2000, 1, 0) {
		t.Error("store past region must fault")
	}
}

func TestOverlapRejected(t *testing.T) {
	b := NewBus()
	if err := b.AddRAM(0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRAM(0x1800, 0x1000); err == nil {
		t.Error("overlapping RAM must be rejected")
	}
	if err := b.AddDevice(0x0, 0x1001, &stubDev{name: "d"}); err == nil {
		t.Error("overlapping device must be rejected")
	}
	if err := b.AddRAM(0x3000, 0); err == nil {
		t.Error("empty region must be rejected")
	}
	if err := b.AddRAM(^uint64(0)-10, 100); err == nil {
		t.Error("wrapping region must be rejected")
	}
}

func TestDeviceDispatch(t *testing.T) {
	b := NewBus()
	d := &stubDev{name: "clint"}
	if err := b.AddDevice(0x200_0000, 0x1000, d); err != nil {
		t.Fatal(err)
	}
	if !b.Store(0x200_0BFF, 4, 42) {
		t.Fatal("device store failed")
	}
	if d.lastOff != 0xBFF || d.val != 42 {
		t.Errorf("device saw off=%#x val=%d", d.lastOff, d.val)
	}
	got, ok := b.Load(0x200_0BFF, 4)
	if !ok || got != 42 {
		t.Errorf("device load got %d", got)
	}
	d.reject = true
	if _, ok := b.Load(0x200_0000, 4); ok {
		t.Error("device rejection must propagate as fault")
	}
}

func TestWriteReadBytes(t *testing.T) {
	b := NewBus()
	if err := b.AddRAM(0x8000_0000, 64); err != nil {
		t.Fatal(err)
	}
	img := []byte{1, 2, 3, 4, 5}
	if err := b.WriteBytes(0x8000_0010, img); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBytes(0x8000_0010, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img {
		if got[i] != img[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], img[i])
		}
	}
	if err := b.WriteBytes(0x8000_003E, img); err == nil {
		t.Error("WriteBytes past RAM must fail")
	}
	if _, err := b.ReadBytes(0x9000_0000, 1); err == nil {
		t.Error("ReadBytes of unmapped must fail")
	}
}

func TestWriteBytesToDeviceFails(t *testing.T) {
	b := NewBus()
	if err := b.AddDevice(0x1000, 0x100, &stubDev{name: "d"}); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteBytes(0x1000, []byte{1}); err == nil {
		t.Error("WriteBytes into a device must fail")
	}
}

func TestLoadStoreRoundTripProperty(t *testing.T) {
	b := NewBus()
	const base, size = 0x8000_0000, 0x10000
	if err := b.AddRAM(base, size); err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, v uint64, szSel uint8) bool {
		sz := []int{1, 2, 4, 8}[szSel%4]
		addr := base + uint64(off)%(size-8)
		addr &^= uint64(sz - 1) // natural alignment
		if !b.Store(addr, sz, v) {
			return false
		}
		got, ok := b.Load(addr, sz)
		if !ok {
			return false
		}
		want := v
		if sz < 8 {
			want = v & (1<<(8*sz) - 1)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessTypeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Exec.String() != "exec" {
		t.Error("access type names")
	}
	if AccessType(9).String() != "AccessType(9)" {
		t.Error("unknown access type")
	}
}

func TestRegionsSorted(t *testing.T) {
	b := NewBus()
	_ = b.AddRAM(0x8000_0000, 0x1000)
	_ = b.AddRAM(0x1000, 0x1000)
	_ = b.AddDevice(0x200_0000, 0x1000, &stubDev{name: "d"})
	rs := b.Regions()
	for i := 1; i < len(rs); i++ {
		if rs[i-1].Base >= rs[i].Base {
			t.Fatal("regions not sorted")
		}
	}
}
