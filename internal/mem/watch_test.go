package mem

import "testing"

type recordWatcher struct{ pages []uint64 }

func (w *recordWatcher) InvalidatePhysPage(p uint64) { w.pages = append(w.pages, p) }

func TestWatchPageNotifiesOnceThenRearms(t *testing.T) {
	b := NewBus()
	if err := b.AddRAM(0x80000000, 0x10000); err != nil {
		t.Fatal(err)
	}
	w := &recordWatcher{}
	b.AddPageWatcher(w)

	if !b.WatchPage(0x80001008) {
		t.Fatal("WatchPage on RAM returned false")
	}
	// Write to a different page: no notification.
	b.Store(0x80000000, 8, 1)
	if len(w.pages) != 0 {
		t.Fatalf("unexpected notify %x", w.pages)
	}
	// Write to the watched page: one notification with the page base.
	b.Store(0x80001FF8, 8, 2)
	if len(w.pages) != 1 || w.pages[0] != 0x80001000 {
		t.Fatalf("notify = %x, want [0x80001000]", w.pages)
	}
	// The bit is consumed: a second write is silent until re-armed.
	b.Store(0x80001000, 8, 3)
	if len(w.pages) != 1 {
		t.Fatalf("notify after consume = %x", w.pages)
	}
	if !b.WatchPage(0x80001000) {
		t.Fatal("re-arm failed")
	}
	b.Store(0x80001004, 4, 4)
	if len(w.pages) != 2 || w.pages[1] != 0x80001000 {
		t.Fatalf("re-armed notify = %x", w.pages)
	}
}

func TestWatchPageSpanningWrites(t *testing.T) {
	b := NewBus()
	if err := b.AddRAM(0x80000000, 0x10000); err != nil {
		t.Fatal(err)
	}
	w := &recordWatcher{}
	b.AddPageWatcher(w)
	b.WatchPage(0x80000000)
	b.WatchPage(0x80001000)
	b.WatchPage(0x80002000)
	// WriteBytes across three pages notifies each watched page.
	if err := b.WriteBytes(0x80000F00, make([]byte, 0x1200)); err != nil {
		t.Fatal(err)
	}
	if len(w.pages) != 3 {
		t.Fatalf("notify = %x, want three pages", w.pages)
	}
}

func TestWatchPageRejectsMMIO(t *testing.T) {
	b := NewBus()
	if err := b.AddRAM(0x80000000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if b.WatchPage(0x10000000) {
		t.Fatal("WatchPage on unmapped space returned true")
	}
	if !b.IsRAM(0x80000000, 8) {
		t.Fatal("IsRAM false for RAM")
	}
	if b.IsRAM(0x10000000, 8) {
		t.Fatal("IsRAM true for unmapped")
	}
}
