package mem

import "sort"

// wbEntry is one buffered 8-byte word of hart-local stores: val holds the
// written bytes, mask flags which of the eight bytes are valid.
type wbEntry struct {
	val  uint64
	mask uint8
}

// wbCap bounds the write buffer. A slice parks (and is resumed after the
// barrier) when the buffer fills; one instruction writes at most two words,
// so checking between instructions suffices.
const wbCap = 4096

// Port is a hart's private window onto the shared Bus. In normal (direct)
// mode it forwards straight to the bus. During a parallel execution slice
// (BeginSlice..Commit) the port:
//
//   - serves RAM loads with store→load forwarding from a private write
//     buffer layered over the (read-only) shared RAM;
//   - diverts RAM stores into that buffer, to be committed at the next
//     barrier in deterministic hart-ID order;
//   - refuses device (MMIO) accesses, raising the blocked flag so the hart
//     can park the instruction and replay it at the barrier.
//
// Each port also carries its own 1-entry region cache, so concurrent harts
// never touch the bus's shared find cache.
type Port struct {
	bus  *Bus
	last *Region // private find cache

	slicing bool
	blocked bool
	wb      map[uint64]wbEntry // keyed pa &^ 7
}

// NewPort returns a direct-mode port onto bus.
func NewPort(bus *Bus) *Port {
	return &Port{bus: bus, wb: make(map[uint64]wbEntry)}
}

// Bus returns the underlying shared bus.
func (p *Port) Bus() *Bus { return p.bus }

func (p *Port) find(addr uint64, size int) *Region {
	if r := p.last; r != nil && r.Contains(addr, size) {
		return r
	}
	r := p.bus.lookup(addr, size)
	if r != nil {
		p.last = r
	}
	return r
}

// BeginSlice switches the port into buffered slice mode.
func (p *Port) BeginSlice() {
	p.slicing = true
	p.blocked = false
}

// Slicing reports whether the port is in buffered slice mode.
func (p *Port) Slicing() bool { return p.slicing }

// TakeBlocked reads and clears the blocked flag. It is set when a slice-mode
// access needed a device and was refused.
func (p *Port) TakeBlocked() bool {
	b := p.blocked
	p.blocked = false
	return b
}

// Full reports whether the write buffer has reached capacity.
func (p *Port) Full() bool { return len(p.wb) >= wbCap }

// Buffered returns the number of buffered words.
func (p *Port) Buffered() int { return len(p.wb) }

// Load reads size bytes at addr. In slice mode, device accesses set the
// blocked flag and fail; RAM loads see this hart's own buffered stores.
func (p *Port) Load(addr uint64, size int) (uint64, bool) {
	if !p.slicing {
		return p.bus.Load(addr, size)
	}
	r := p.find(addr, size)
	if r == nil {
		return 0, false
	}
	if r.Dev != nil {
		p.blocked = true
		return 0, false
	}
	v, ok := r.loadRAM(addr-r.Base, size)
	if !ok {
		return 0, false
	}
	if len(p.wb) != 0 {
		v = p.forward(addr, size, v)
	}
	return v, true
}

// Store writes size bytes at addr. In slice mode, device accesses set the
// blocked flag and fail; RAM stores go to the write buffer.
func (p *Port) Store(addr uint64, size int, value uint64) bool {
	if !p.slicing {
		return p.bus.Store(addr, size, value)
	}
	r := p.find(addr, size)
	if r == nil {
		return false
	}
	if r.Dev != nil {
		p.blocked = true
		return false
	}
	switch size {
	case 1, 2, 4, 8:
	default:
		return false
	}
	p.buffer(addr, size, value)
	return true
}

// buffer records a store of size bytes at addr into the write buffer,
// splitting across the two containing words if the access is misaligned.
func (p *Port) buffer(addr uint64, size int, value uint64) {
	for i := 0; i < size; {
		word := (addr + uint64(i)) &^ 7
		off := (addr + uint64(i)) & 7
		n := 8 - int(off) // bytes that fit in this word
		if n > size-i {
			n = size - i
		}
		e := p.wb[word]
		for j := 0; j < n; j++ {
			b := byte(value >> (8 * uint(i+j)))
			sh := 8 * (off + uint64(j))
			e.val = e.val&^(0xFF<<sh) | uint64(b)<<sh
			e.mask |= 1 << (off + uint64(j))
		}
		p.wb[word] = e
		i += n
	}
}

// forward overlays this hart's buffered bytes onto a value just loaded from
// shared RAM.
func (p *Port) forward(addr uint64, size int, v uint64) uint64 {
	for i := 0; i < size; {
		word := (addr + uint64(i)) &^ 7
		off := (addr + uint64(i)) & 7
		n := 8 - int(off)
		if n > size-i {
			n = size - i
		}
		if e, ok := p.wb[word]; ok {
			for j := 0; j < n; j++ {
				if e.mask&(1<<(off+uint64(j))) != 0 {
					b := byte(e.val >> (8 * (off + uint64(j))))
					v = v&^(0xFF<<(8*uint(i+j))) | uint64(b)<<(8*uint(i+j))
				}
			}
		}
		i += n
	}
	return v
}

// WatchPage arms a write watch for the page containing pa, like Bus.WatchPage
// but through the port's private region cache (watch-bit arming is atomic).
func (p *Port) WatchPage(pa uint64) bool {
	r := p.find(pa&^4095, 1)
	if r == nil || r.Dev != nil {
		return false
	}
	pg := (pa - r.Base) >> 12
	atomicSetBit(&r.watch[pg/64], 1<<(pg%64))
	return true
}

// IsRAM reports whether [addr, addr+size) is fully RAM-backed.
func (p *Port) IsRAM(addr uint64, size int) bool {
	r := p.find(addr, size)
	return r != nil && r.Dev == nil
}

// Commit applies the buffered stores to shared RAM in ascending physical
// address order, firing write watches as usual. For every committed word it
// calls kill (if non-nil) with the word's base address so the machine can
// break other harts' overlapping LR/SC reservations. Must only be called at
// a barrier, with all slices quiesced; it leaves the port in direct mode.
func (p *Port) Commit(kill func(wordPA uint64)) {
	p.slicing = false
	p.blocked = false
	if len(p.wb) == 0 {
		return
	}
	words := make([]uint64, 0, len(p.wb))
	for w := range p.wb {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	for _, w := range words {
		e := p.wb[w]
		r := p.find(w, 8)
		if r == nil || r.Dev != nil {
			continue // region vanished out from under us: cannot happen
		}
		off := w - r.Base
		if e.mask == 0xFF {
			r.storeRAM(off, 8, e.val)
		} else {
			// A word-aligned 8-byte span never straddles a page.
			pg := r.writablePage(off)
			base := off & pageMask
			for j := uint64(0); j < 8; j++ {
				if e.mask&(1<<j) != 0 {
					pg.data[base+j] = byte(e.val >> (8 * j))
				}
			}
		}
		p.bus.noteWrite(r, off, 8)
		if kill != nil {
			kill(w)
		}
		delete(p.wb, w)
	}
}

// Discard drops any buffered stores and returns the port to direct mode
// (machine reset / snapshot restore paths).
func (p *Port) Discard() {
	p.slicing = false
	p.blocked = false
	clear(p.wb)
}
