package asm

import (
	"encoding/binary"
	"testing"

	"govfm/internal/rv"
)

func word(t *testing.T, img []byte, i int) uint32 {
	t.Helper()
	return binary.LittleEndian.Uint32(img[4*i:])
}

func TestRTypeEncoding(t *testing.T) {
	a := New(0x8000_0000)
	a.Add(A0, A1, A2)
	a.Sub(T0, T1, T2)
	a.Mul(S0, S1, S2)
	img := a.MustAssemble()

	w := word(t, img, 0)
	if rv.OpcodeOf(w) != rv.OpReg || rv.RdOf(w) != A0 || rv.Rs1Of(w) != A1 ||
		rv.Rs2Of(w) != A2 || rv.Funct3Of(w) != 0 || rv.Funct7Of(w) != 0 {
		t.Errorf("add encoding %#x", w)
	}
	w = word(t, img, 1)
	if rv.Funct7Of(w) != 0x20 {
		t.Errorf("sub funct7 %#x", rv.Funct7Of(w))
	}
	w = word(t, img, 2)
	if rv.Funct7Of(w) != 1 {
		t.Errorf("mul funct7 %#x", rv.Funct7Of(w))
	}
}

func TestITypeImmediates(t *testing.T) {
	a := New(0)
	a.Addi(A0, A1, -1)
	a.Addi(A0, A1, 2047)
	a.Addi(A0, A1, -2048)
	img := a.MustAssemble()
	for i, want := range []uint64{^uint64(0), 2047, rv.SignExtend(0x800, 12)} {
		if got := rv.ImmI(word(t, img, i)); got != want {
			t.Errorf("imm %d: got %#x want %#x", i, got, want)
		}
	}
	b := New(0)
	b.Addi(A0, A1, 2048)
	if _, err := b.Assemble(); err == nil {
		t.Error("out-of-range immediate must error")
	}
}

func TestStoreEncoding(t *testing.T) {
	a := New(0)
	a.Sd(A0, SP, -16)
	img := a.MustAssemble()
	w := word(t, img, 0)
	if rv.OpcodeOf(w) != rv.OpStore || rv.Funct3Of(w) != 3 ||
		rv.Rs1Of(w) != SP || rv.Rs2Of(w) != A0 {
		t.Errorf("sd fields %#x", w)
	}
	if rv.ImmS(w) != rv.SignExtend(0xFF0, 12) {
		t.Errorf("sd imm %#x", rv.ImmS(w))
	}
}

func TestBranchFixups(t *testing.T) {
	a := New(0x1000)
	a.Label("top")
	a.Nop()
	a.Beq(A0, A1, "top")     // backward: offset -4
	a.Bne(A0, A1, "forward") // forward: offset +8
	a.Nop()
	a.Label("forward")
	img := a.MustAssemble()
	if got := rv.ImmB(word(t, img, 1)); got != rv.SignExtend(0x1FFC, 13) {
		t.Errorf("backward branch imm %#x", got)
	}
	if got := rv.ImmB(word(t, img, 2)); got != 8 {
		t.Errorf("forward branch imm %#x", got)
	}
}

func TestJalFixup(t *testing.T) {
	a := New(0x2000)
	a.Jal(RA, "func")
	a.Nop()
	a.Label("func")
	img := a.MustAssemble()
	if got := rv.ImmJ(word(t, img, 0)); got != 8 {
		t.Errorf("jal imm %d", got)
	}
	if rv.RdOf(word(t, img, 0)) != RA {
		t.Error("jal rd")
	}
}

func TestUndefinedLabelErrors(t *testing.T) {
	a := New(0)
	a.J("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Error("undefined label must error")
	}
}

func TestDuplicateLabelErrors(t *testing.T) {
	a := New(0)
	a.Label("x")
	a.Label("x")
	a.Nop()
	if _, err := a.Assemble(); err == nil {
		t.Error("duplicate label must error")
	}
}

func TestCsrEncoding(t *testing.T) {
	a := New(0)
	a.Csrrw(X0, rv.CSRMscratch, X0) // the Table 4 probe instruction
	a.Csrr(A0, rv.CSRMstatus)
	a.Csrrwi(X0, rv.CSRMie, 8)
	img := a.MustAssemble()
	w := word(t, img, 0)
	if rv.CSROf(w) != rv.CSRMscratch || rv.Funct3Of(w) != rv.F3Csrrw {
		t.Errorf("csrrw encoding %#x", w)
	}
	w = word(t, img, 1)
	if rv.CSROf(w) != rv.CSRMstatus || rv.Funct3Of(w) != rv.F3Csrrs || rv.RdOf(w) != A0 {
		t.Errorf("csrr encoding %#x", w)
	}
	w = word(t, img, 2)
	if rv.Funct3Of(w) != rv.F3Csrrwi || rv.Rs1Of(w) != 8 {
		t.Errorf("csrrwi encoding %#x", w)
	}
}

func TestPrivEncodings(t *testing.T) {
	a := New(0)
	a.Ecall()
	a.Ebreak()
	a.Mret()
	a.Sret()
	a.Wfi()
	a.FenceI()
	a.SfenceVMA(X0, X0)
	img := a.MustAssemble()
	wants := []uint32{rv.InstrEcall, rv.InstrEbreak, rv.InstrMret,
		rv.InstrSret, rv.InstrWfi, rv.InstrFenceI}
	for i, want := range wants {
		if got := word(t, img, i); got != want {
			t.Errorf("instr %d: got %#x want %#x", i, got, want)
		}
	}
	w := word(t, img, 6)
	if rv.Funct7Of(w) != rv.SfenceVMAFunct7 || rv.OpcodeOf(w) != rv.OpSystem {
		t.Errorf("sfence.vma %#x", w)
	}
}

func TestAlign(t *testing.T) {
	a := New(0x1000)
	a.Nop()
	a.Align(16)
	if a.PC() != 0x1010 {
		t.Errorf("PC after align = %#x", a.PC())
	}
	b := New(0)
	b.Align(6)
	if _, err := b.Assemble(); err == nil {
		t.Error("non-power-of-two align must error")
	}
}

func TestRaw64(t *testing.T) {
	a := New(0)
	a.Raw64(0x1122334455667788)
	img := a.MustAssemble()
	if binary.LittleEndian.Uint64(img) != 0x1122334455667788 {
		t.Error("Raw64 layout")
	}
}

func TestRegisterRangeChecked(t *testing.T) {
	a := New(0)
	a.Add(32, 0, 0)
	a.Nop()
	if _, err := a.Assemble(); err == nil {
		t.Error("register out of range must error")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble must panic on error")
		}
	}()
	a := New(0)
	a.J("missing")
	a.MustAssemble()
}

func TestMisalignedBaseErrors(t *testing.T) {
	a := New(2)
	a.Nop()
	if _, err := a.Assemble(); err == nil {
		t.Error("misaligned base must error")
	}
}

func TestBranchOutOfRange(t *testing.T) {
	a := New(0)
	a.Beq(A0, A1, "far")
	for i := 0; i < 1100; i++ {
		a.Nop()
	}
	a.Label("far")
	if _, err := a.Assemble(); err == nil {
		t.Error("branch beyond ±4KiB must error")
	}
}

func TestAddrHelper(t *testing.T) {
	a := New(0x1000)
	a.Nop()
	a.Label("here")
	if a.Addr("here") != 0x1004 {
		t.Errorf("Addr = %#x", a.Addr("here"))
	}
	b := New(0)
	b.Nop()
	_ = b.Addr("missing")
	if _, err := b.Assemble(); err == nil {
		t.Error("Addr of undefined label must error at Assemble")
	}
}

func TestFarBranches(t *testing.T) {
	a := New(0x1000)
	a.BnezFar(A0, "far")
	for i := 0; i < 1500; i++ { // beyond the ±4 KiB conditional range
		a.Nop()
	}
	a.Label("far")
	img := a.MustAssemble()
	// First word: inverted beq skipping +8; second: jal to "far".
	w0 := word(t, img, 0)
	if rv.OpcodeOf(w0) != rv.OpBranch || rv.Funct3Of(w0) != 0 {
		t.Errorf("inverted branch %#x", w0)
	}
	if rv.ImmB(w0) != 8 {
		t.Errorf("inverted branch offset %d", rv.ImmB(w0))
	}
	w1 := word(t, img, 1)
	if rv.OpcodeOf(w1) != rv.OpJal {
		t.Errorf("far jump %#x", w1)
	}
	if got := rv.ImmJ(w1); got != uint64(4*1500+4) {
		t.Errorf("far jump offset %d", got)
	}
}

func TestSpace(t *testing.T) {
	a := New(0)
	a.Space(16)
	img := a.MustAssemble()
	if len(img) != 16 {
		t.Errorf("Space(16) produced %d bytes", len(img))
	}
	b := New(0)
	b.Space(6)
	if _, err := b.Assemble(); err == nil {
		t.Error("Space must require a multiple of 4")
	}
}
