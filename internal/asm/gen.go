package asm

import (
	"math/rand"

	"govfm/internal/rv"
)

// Constrained-random instruction generation for the differential fuzzer
// (internal/verif/fuzz). Programs are slot-based: Generate emits exactly
// cfg.Slots words, and control flow only ever targets slot boundaries, so
// mutating or nop-ing one slot never changes the meaning of another. The
// constraints encode the fuzzer's path-coincidence invariants — which CSRs
// may be touched, in which access forms, and where memory operands may
// point — so the caller fully controls the reachable architectural surface.

// CSRForm is a bitmask of Zicsr access forms a fuzzed CSR may use.
type CSRForm uint8

const (
	FormCsrrw CSRForm = 1 << iota
	FormCsrrs
	FormCsrrc
	FormCsrrwi
	FormCsrrsi
	FormCsrrci
	// FormRead is a pure read: csrrs rd, csr, x0 (never writes).
	FormRead
)

// Common form sets for generator CSR specs.
const (
	// FormsAll allows every access form.
	FormsAll = FormCsrrw | FormCsrrs | FormCsrrc | FormCsrrwi | FormCsrrsi |
		FormCsrrci | FormRead
	// FormsImm allows only immediate-operand writes (zimm <= 31 bounds the
	// reachable bits) plus pure reads.
	FormsImm = FormCsrrwi | FormCsrrsi | FormCsrrci | FormRead
	// FormsSet allows only bit-setting forms plus pure reads (the CSR value
	// can grow but never lose bits the initial state established).
	FormsSet = FormCsrrs | FormCsrrsi | FormRead
	// FormsRead allows only pure reads.
	FormsRead CSRForm = FormRead
)

// GenCSR names one CSR the generator may access and the allowed forms.
type GenCSR struct {
	CSR   uint16
	Forms CSRForm
}

// GenCfg bounds what Generate may emit.
type GenCfg struct {
	// Slots is the program length in 32-bit words.
	Slots int
	// DataRegs are general-purpose registers instructions may read and
	// write freely.
	DataRegs []int
	// BaseRegs hold scratch-memory pointers; memory operands use them as
	// bases and no instruction ever writes them.
	BaseRegs []int
	// BaseWindow is the byte range reachable from a base register:
	// load/store offsets are drawn from [0, BaseWindow).
	BaseWindow int64
	// CSRs lists the CSRs Zicsr instructions may touch.
	CSRs []GenCSR
	// HFence, on platforms with the hypervisor extension, lets the
	// privileged class emit hfence.vvma/hfence.gvma.
	HFence bool
}

// Instruction class weights. CSR and privileged instructions dominate: they
// are the monitor's emulated surface and the point of differential fuzzing.
var genClasses = []struct {
	weight int
	gen    func(*rand.Rand, *GenCfg, int) uint32
}{
	{12, genAluImm},
	{8, genAluReg},
	{5, genAluWord},
	{3, genLuiAuipc},
	{8, genBranch},
	{3, genJal},
	{2, genJalr},
	{8, genLoad},
	{7, genStore},
	{4, genAmo},
	{24, genCSROp},
	{11, genPriv},
	{2, genRandomWord},
	{2, func(*rand.Rand, *GenCfg, int) uint32 { return rv.InstrNop }},
}

var genTotalWeight = func() int {
	t := 0
	for _, c := range genClasses {
		t += c.weight
	}
	return t
}()

// Generate produces cfg.Slots instruction words.
func Generate(rng *rand.Rand, cfg *GenCfg) []uint32 {
	prog := make([]uint32, cfg.Slots)
	for i := range prog {
		prog[i] = GenOne(rng, cfg, i)
	}
	return prog
}

// GenOne produces a single instruction word for the given slot. Branch and
// jump offsets are relative to the slot, so a word generated for slot i is
// only valid at slot i.
func GenOne(rng *rand.Rand, cfg *GenCfg, slot int) uint32 {
	n := rng.Intn(genTotalWeight)
	for _, c := range genClasses {
		if n < c.weight {
			return c.gen(rng, cfg, slot)
		}
		n -= c.weight
	}
	return rv.InstrNop
}

func pick(rng *rand.Rand, regs []int) uint32 { return uint32(regs[rng.Intn(len(regs))]) }

// srcReg picks a register to read: any data or base register, sometimes x0.
func srcReg(rng *rand.Rand, cfg *GenCfg) uint32 {
	if rng.Intn(10) == 0 {
		return 0
	}
	if len(cfg.BaseRegs) > 0 && rng.Intn(6) == 0 {
		return pick(rng, cfg.BaseRegs)
	}
	return pick(rng, cfg.DataRegs)
}

// dstReg picks a register to write: a data register, sometimes x0.
func dstReg(rng *rand.Rand, cfg *GenCfg) uint32 {
	if rng.Intn(12) == 0 {
		return 0
	}
	return pick(rng, cfg.DataRegs)
}

func imm12(rng *rand.Rand) uint32 { return rng.Uint32() & 0xFFF }

func genAluImm(rng *rand.Rand, cfg *GenCfg, _ int) uint32 {
	rd, rs1 := dstReg(rng, cfg), srcReg(rng, cfg)
	switch rng.Intn(4) {
	case 0: // shift-immediate: 6-bit shamt, funct6 selects srli/srai
		f3 := []uint32{1, 5, 5}[rng.Intn(3)]
		sh := rng.Uint32() & 0x3F
		f6 := uint32(0)
		if f3 == 5 && rng.Intn(2) == 0 {
			f6 = 0x10 // srai
		}
		return f6<<26 | sh<<20 | rs1<<15 | f3<<12 | rd<<7 | rv.OpImm
	default:
		f3 := []uint32{0, 2, 3, 4, 6, 7}[rng.Intn(6)]
		return encI(imm12(rng), rs1, f3, rd, rv.OpImm)
	}
}

func genAluReg(rng *rand.Rand, cfg *GenCfg, _ int) uint32 {
	rd, rs1, rs2 := dstReg(rng, cfg), srcReg(rng, cfg), srcReg(rng, cfg)
	if rng.Intn(3) == 0 { // M extension
		return encR(1, rs2, rs1, rng.Uint32()&7, rd, rv.OpReg)
	}
	f3 := rng.Uint32() & 7
	f7 := uint32(0)
	if (f3 == 0 || f3 == 5) && rng.Intn(2) == 0 {
		f7 = 0x20 // sub / sra
	}
	return encR(f7, rs2, rs1, f3, rd, rv.OpReg)
}

func genAluWord(rng *rand.Rand, cfg *GenCfg, _ int) uint32 {
	rd, rs1 := dstReg(rng, cfg), srcReg(rng, cfg)
	if rng.Intn(2) == 0 {
		switch rng.Intn(3) {
		case 0: // addiw
			return encI(imm12(rng), rs1, 0, rd, rv.OpImm32)
		default: // slliw/srliw/sraiw: 5-bit shamt
			f3 := []uint32{1, 5}[rng.Intn(2)]
			f7 := uint32(0)
			if f3 == 5 && rng.Intn(2) == 0 {
				f7 = 0x20
			}
			return encR(f7, rng.Uint32()&0x1F, rs1, f3, rd, rv.OpImm32)
		}
	}
	rs2 := srcReg(rng, cfg)
	if rng.Intn(3) == 0 { // M-extension word ops: mulw, divw, divuw, remw, remuw
		f3 := []uint32{0, 4, 5, 6, 7}[rng.Intn(5)]
		return encR(1, rs2, rs1, f3, rd, rv.OpReg32)
	}
	f3 := []uint32{0, 1, 5}[rng.Intn(3)]
	f7 := uint32(0)
	if (f3 == 0 || f3 == 5) && rng.Intn(2) == 0 {
		f7 = 0x20
	}
	return encR(f7, rs2, rs1, f3, rd, rv.OpReg32)
}

func genLuiAuipc(rng *rand.Rand, cfg *GenCfg, _ int) uint32 {
	rd := dstReg(rng, cfg)
	op := rv.OpLui
	if rng.Intn(2) == 0 {
		op = rv.OpAuipc
	}
	return rng.Uint32()&0xFFFFF000 | rd<<7 | op
}

// slotTarget picks a branch/jump destination slot; cfg.Slots (one past the
// end) is allowed, landing on the zeroed word after the program.
func slotTarget(rng *rand.Rand, cfg *GenCfg, slot int) int64 {
	return int64(rng.Intn(cfg.Slots+1)-slot) * 4
}

func genBranch(rng *rand.Rand, cfg *GenCfg, slot int) uint32 {
	f3 := []uint32{0, 1, 4, 5, 6, 7}[rng.Intn(6)]
	rs1, rs2 := srcReg(rng, cfg), srcReg(rng, cfg)
	off := slotTarget(rng, cfg, slot)
	return encodeB(uint64(off)) | rs2<<20 | rs1<<15 | f3<<12 | rv.OpBranch
}

func genJal(rng *rand.Rand, cfg *GenCfg, slot int) uint32 {
	return encodeJ(uint64(slotTarget(rng, cfg, slot))) | dstReg(rng, cfg)<<7 | rv.OpJal
}

func genJalr(rng *rand.Rand, cfg *GenCfg, _ int) uint32 {
	// Target is rs1+imm with bit 0 cleared; a base register keeps it in
	// scratch memory (an executable region), anything else usually faults.
	rs1 := srcReg(rng, cfg)
	if len(cfg.BaseRegs) > 0 && rng.Intn(4) != 0 {
		rs1 = pick(rng, cfg.BaseRegs)
	}
	return encI(imm12(rng), rs1, 0, dstReg(rng, cfg), rv.OpJalr)
}

// memOffset draws a load/store offset inside the base window, aligned to
// size except for an occasional deliberate misalignment.
func memOffset(rng *rand.Rand, cfg *GenCfg, size int64) uint32 {
	w := cfg.BaseWindow
	if w <= 8 || w > 2048 {
		w = 2048
	}
	off := rng.Int63n(w - 8)
	if rng.Intn(8) != 0 {
		off &^= size - 1
	}
	return uint32(off) & 0xFFF
}

func genLoad(rng *rand.Rand, cfg *GenCfg, _ int) uint32 {
	f3 := uint32(rng.Intn(7)) // lb lh lw ld lbu lhu lwu
	size := int64(1) << (f3 & 3)
	return encI(memOffset(rng, cfg, size), pick(rng, cfg.BaseRegs), f3,
		dstReg(rng, cfg), rv.OpLoad)
}

func genStore(rng *rand.Rand, cfg *GenCfg, _ int) uint32 {
	f3 := uint32(rng.Intn(4)) // sb sh sw sd
	return encS(memOffset(rng, cfg, int64(1)<<f3), srcReg(rng, cfg),
		pick(rng, cfg.BaseRegs), f3, rv.OpStore)
}

func genAmo(rng *rand.Rand, cfg *GenCfg, _ int) uint32 {
	f5s := []uint32{0x00, 0x01, 0x02, 0x03, 0x04, 0x08, 0x0C, 0x10, 0x14, 0x18, 0x1C}
	f5 := f5s[rng.Intn(len(f5s))]
	f3 := uint32(2 + rng.Intn(2)) // .w / .d
	rs1 := pick(rng, cfg.BaseRegs)
	rs2 := srcReg(rng, cfg)
	if f5 == 0x02 { // lr: rs2 must be x0
		rs2 = 0
	}
	w := encR(f5<<2, rs2, rs1, f3, dstReg(rng, cfg), rv.OpAmo)
	if rng.Intn(8) == 0 {
		// Misaligned AMO address: flip low offset bits via rs1? AMO has no
		// immediate; misalignment comes from the base register value, which
		// the state generator biases. Instead occasionally set aq/rl bits.
		w |= rng.Uint32() & (3 << 25)
	}
	return w
}

func genCSROp(rng *rand.Rand, cfg *GenCfg, _ int) uint32 {
	if len(cfg.CSRs) == 0 {
		return rv.InstrNop
	}
	spec := cfg.CSRs[rng.Intn(len(cfg.CSRs))]
	var forms []CSRForm
	for f := FormCsrrw; f <= FormRead; f <<= 1 {
		if spec.Forms&f != 0 {
			forms = append(forms, f)
		}
	}
	if len(forms) == 0 {
		return rv.InstrNop
	}
	form := forms[rng.Intn(len(forms))]
	rd := dstReg(rng, cfg)
	csrN := uint32(spec.CSR)
	switch form {
	case FormCsrrw:
		return csrN<<20 | srcReg(rng, cfg)<<15 | rv.F3Csrrw<<12 | rd<<7 | rv.OpSystem
	case FormCsrrs:
		return csrN<<20 | srcReg(rng, cfg)<<15 | rv.F3Csrrs<<12 | rd<<7 | rv.OpSystem
	case FormCsrrc:
		return csrN<<20 | srcReg(rng, cfg)<<15 | rv.F3Csrrc<<12 | rd<<7 | rv.OpSystem
	case FormCsrrwi:
		return csrN<<20 | (rng.Uint32()&0x1F)<<15 | rv.F3Csrrwi<<12 | rd<<7 | rv.OpSystem
	case FormCsrrsi:
		return csrN<<20 | (rng.Uint32()&0x1F)<<15 | rv.F3Csrrsi<<12 | rd<<7 | rv.OpSystem
	case FormCsrrci:
		return csrN<<20 | (rng.Uint32()&0x1F)<<15 | rv.F3Csrrci<<12 | rd<<7 | rv.OpSystem
	default: // FormRead
		return csrN<<20 | rv.F3Csrrs<<12 | rd<<7 | rv.OpSystem
	}
}

func genPriv(rng *rand.Rand, cfg *GenCfg, _ int) uint32 {
	n := 22
	if cfg.HFence {
		n = 26
	}
	switch rng.Intn(n) {
	case 0, 1, 2, 3, 4: // mret: the main world-switch trigger
		return rv.InstrMret
	case 5, 6, 7, 8, 9:
		return rv.InstrSret
	case 10, 11:
		return rv.InstrWfi
	case 12, 13, 14:
		return rv.InstrEcall
	case 15, 16:
		return rv.InstrEbreak
	case 17, 18, 19:
		rs1, rs2 := srcReg(rng, cfg), srcReg(rng, cfg)
		return encR(rv.SfenceVMAFunct7, rs2, rs1, 0, 0, rv.OpSystem)
	case 20:
		return rv.InstrFence
	case 22, 23: // hfence.vvma (only drawn when cfg.HFence)
		return encR(rv.HfenceVVMAFunct7, srcReg(rng, cfg), srcReg(rng, cfg), 0, 0, rv.OpSystem)
	case 24, 25: // hfence.gvma
		return encR(rv.HfenceGVMAFunct7, srcReg(rng, cfg), srcReg(rng, cfg), 0, 0, rv.OpSystem)
	default:
		return rv.InstrFenceI
	}
}

// genRandomWord emits a fully random word — decoder fuzz fodder. SYSTEM
// opcodes are excluded: a random CSR number would probe CSR existence,
// which legitimately differs between the native and virtualized harts.
func genRandomWord(rng *rand.Rand, _ *GenCfg, _ int) uint32 {
	for i := 0; i < 8; i++ {
		w := rng.Uint32()
		if w&0x7F != rv.OpSystem {
			return w
		}
	}
	return rv.InstrNop
}
