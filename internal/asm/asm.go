// Package asm is a programmatic RV64 assembler. Firmware and kernel images
// in this repository are real machine code built with it: each method emits
// one instruction (or a short pseudo-instruction expansion) and labels
// resolve forward references at Assemble time.
//
// The assembler covers RV64IMA_Zicsr plus the privileged instructions —
// the same surface the simulator executes and the monitor emulates.
package asm

import (
	"encoding/binary"
	"fmt"

	"govfm/internal/rv"
)

// ABI register names.
const (
	X0 = iota
	RA
	SP
	GP
	TP
	T0
	T1
	T2
	S0
	S1
	A0
	A1
	A2
	A3
	A4
	A5
	A6
	A7
	S2
	S3
	S4
	S5
	S6
	S7
	S8
	S9
	S10
	S11
	T3
	T4
	T5
	T6
)

// Zero is the canonical name for x0.
const Zero = X0

type fixupKind int

const (
	fixBranch fixupKind = iota // B-type, 13-bit pc-relative
	fixJal                     // J-type, 21-bit pc-relative
	fixAuipc                   // U-type, pc-relative high part of a La pair
	fixLo12                    // I-type low part of a La pair
	fixAbs64                   // 8-byte absolute address literal
)

type fixup struct {
	word  int // index into words
	kind  fixupKind
	label string
	// pairPC is the PC of the auipc for fixLo12.
	pairPC uint64
}

// Asm accumulates instructions at increasing addresses from a base.
type Asm struct {
	base   uint64
	words  []uint32
	labels map[string]uint64
	fixups []fixup
	errs   []error
}

// New starts an assembly at the given base address (must be 4-aligned).
func New(base uint64) *Asm {
	a := &Asm{base: base, labels: make(map[string]uint64)}
	if base%4 != 0 {
		a.errorf("base %#x not 4-aligned", base)
	}
	return a
}

func (a *Asm) errorf(format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf("asm: "+format, args...))
}

// PC returns the address of the next emitted instruction.
func (a *Asm) PC() uint64 { return a.base + 4*uint64(len(a.words)) }

// Base returns the assembly's base address.
func (a *Asm) Base() uint64 { return a.base }

// Label defines name at the current PC.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.errorf("duplicate label %q", name)
	}
	a.labels[name] = a.PC()
}

// Addr returns a defined label's address; it must already be defined.
func (a *Asm) Addr(name string) uint64 {
	v, ok := a.labels[name]
	if !ok {
		a.errorf("Addr of undefined label %q", name)
	}
	return v
}

// Word emits a raw 32-bit instruction word.
func (a *Asm) Word(w uint32) { a.words = append(a.words, w) }

// Raw64 emits an 8-byte little-endian data value (two words).
func (a *Asm) Raw64(v uint64) {
	a.Word(uint32(v))
	a.Word(uint32(v >> 32))
}

// Align pads with nops to the given power-of-two byte boundary.
func (a *Asm) Align(n uint64) {
	if n == 0 || n&(n-1) != 0 || n%4 != 0 {
		a.errorf("Align(%d): need a power-of-two multiple of 4", n)
		return
	}
	for a.PC()%n != 0 {
		a.Word(rv.InstrNop)
	}
}

// Assemble resolves all fixups and returns the image bytes.
func (a *Asm) Assemble() ([]byte, error) {
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			a.errorf("undefined label %q", f.label)
			continue
		}
		pc := a.base + 4*uint64(f.word)
		switch f.kind {
		case fixBranch:
			off := int64(target) - int64(pc)
			if off < -(1<<12) || off >= 1<<12 || off%2 != 0 {
				a.errorf("branch to %q out of range (%d)", f.label, off)
				continue
			}
			a.words[f.word] |= encodeB(uint64(off))
		case fixJal:
			off := int64(target) - int64(pc)
			if off < -(1<<20) || off >= 1<<20 || off%2 != 0 {
				a.errorf("jal to %q out of range (%d)", f.label, off)
				continue
			}
			a.words[f.word] |= encodeJ(uint64(off))
		case fixAuipc:
			off := int64(target) - int64(pc)
			hi := uint32((off + 0x800) >> 12)
			a.words[f.word] |= hi << 12
		case fixLo12:
			off := int64(target) - int64(f.pairPC)
			lo := uint32(off) & 0xFFF
			a.words[f.word] |= lo << 20
		case fixAbs64:
			a.words[f.word] = uint32(target)
			a.words[f.word+1] = uint32(target >> 32)
		}
	}
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	out := make([]byte, 4*len(a.words))
	for i, w := range a.words {
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	return out, nil
}

// MustAssemble is Assemble that panics on error; images are built at
// program start where an assembly error is a programming bug.
func (a *Asm) MustAssemble() []byte {
	img, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return img
}

func checkReg(a *Asm, rs ...int) {
	for _, r := range rs {
		if r < 0 || r > 31 {
			a.errorf("register x%d out of range", r)
		}
	}
}

// Encoders.

func encR(f7, rs2, rs1, f3, rd, op uint32) uint32 {
	return f7<<25 | rs2<<20 | rs1<<15 | f3<<12 | rd<<7 | op
}

func encI(imm uint32, rs1, f3, rd, op uint32) uint32 {
	return imm<<20 | rs1<<15 | f3<<12 | rd<<7 | op
}

func encS(imm uint32, rs2, rs1, f3, op uint32) uint32 {
	return (imm>>5)<<25 | rs2<<20 | rs1<<15 | f3<<12 | (imm&0x1F)<<7 | op
}

func encodeB(off uint64) uint32 {
	return uint32(off>>12&1)<<31 | uint32(off>>5&0x3F)<<25 |
		uint32(off>>1&0xF)<<8 | uint32(off>>11&1)<<7
}

func encodeJ(off uint64) uint32 {
	return uint32(off>>20&1)<<31 | uint32(off>>1&0x3FF)<<21 |
		uint32(off>>11&1)<<20 | uint32(off>>12&0xFF)<<12
}

func immI12(a *Asm, imm int64) uint32 {
	if imm < -2048 || imm > 2047 {
		a.errorf("I-immediate %d out of range", imm)
	}
	return uint32(imm) & 0xFFF
}

// --- RV64I ---

// Lui emits lui rd, imm20 (imm20 is the raw upper-20-bit field).
func (a *Asm) Lui(rd int, imm20 uint32) {
	checkReg(a, rd)
	a.Word(imm20<<12 | uint32(rd)<<7 | rv.OpLui)
}

// Auipc emits auipc rd, imm20.
func (a *Asm) Auipc(rd int, imm20 uint32) {
	checkReg(a, rd)
	a.Word(imm20<<12 | uint32(rd)<<7 | rv.OpAuipc)
}

// Jal emits jal rd, label.
func (a *Asm) Jal(rd int, label string) {
	checkReg(a, rd)
	a.fixups = append(a.fixups, fixup{word: len(a.words), kind: fixJal, label: label})
	a.Word(uint32(rd)<<7 | rv.OpJal)
}

// J is the j pseudo-instruction (jal x0, label).
func (a *Asm) J(label string) { a.Jal(X0, label) }

// Jalr emits jalr rd, imm(rs1).
func (a *Asm) Jalr(rd, rs1 int, imm int64) {
	checkReg(a, rd, rs1)
	a.Word(encI(immI12(a, imm), uint32(rs1), 0, uint32(rd), rv.OpJalr))
}

// Jr is the jr pseudo-instruction (jalr x0, 0(rs1)).
func (a *Asm) Jr(rs1 int) { a.Jalr(X0, rs1, 0) }

// Ret is the ret pseudo-instruction (jalr x0, 0(ra)).
func (a *Asm) Ret() { a.Jalr(X0, RA, 0) }

func (a *Asm) branch(f3 uint32, rs1, rs2 int, label string) {
	checkReg(a, rs1, rs2)
	a.fixups = append(a.fixups, fixup{word: len(a.words), kind: fixBranch, label: label})
	a.Word(uint32(rs2)<<20 | uint32(rs1)<<15 | f3<<12 | rv.OpBranch)
}

// Beq emits beq rs1, rs2, label; the other branches follow the same shape.
func (a *Asm) Beq(rs1, rs2 int, label string)  { a.branch(0, rs1, rs2, label) }
func (a *Asm) Bne(rs1, rs2 int, label string)  { a.branch(1, rs1, rs2, label) }
func (a *Asm) Blt(rs1, rs2 int, label string)  { a.branch(4, rs1, rs2, label) }
func (a *Asm) Bge(rs1, rs2 int, label string)  { a.branch(5, rs1, rs2, label) }
func (a *Asm) Bltu(rs1, rs2 int, label string) { a.branch(6, rs1, rs2, label) }
func (a *Asm) Bgeu(rs1, rs2 int, label string) { a.branch(7, rs1, rs2, label) }

// Beqz emits beq rs1, x0, label.
func (a *Asm) Beqz(rs1 int, label string) { a.Beq(rs1, X0, label) }

// Bnez emits bne rs1, x0, label.
func (a *Asm) Bnez(rs1 int, label string) { a.Bne(rs1, X0, label) }

func (a *Asm) load(f3 uint32, rd, rs1 int, imm int64) {
	checkReg(a, rd, rs1)
	a.Word(encI(immI12(a, imm), uint32(rs1), f3, uint32(rd), rv.OpLoad))
}

// Lb emits lb rd, imm(rs1); the other loads follow the same shape.
func (a *Asm) Lb(rd, rs1 int, imm int64)  { a.load(0, rd, rs1, imm) }
func (a *Asm) Lh(rd, rs1 int, imm int64)  { a.load(1, rd, rs1, imm) }
func (a *Asm) Lw(rd, rs1 int, imm int64)  { a.load(2, rd, rs1, imm) }
func (a *Asm) Ld(rd, rs1 int, imm int64)  { a.load(3, rd, rs1, imm) }
func (a *Asm) Lbu(rd, rs1 int, imm int64) { a.load(4, rd, rs1, imm) }
func (a *Asm) Lhu(rd, rs1 int, imm int64) { a.load(5, rd, rs1, imm) }
func (a *Asm) Lwu(rd, rs1 int, imm int64) { a.load(6, rd, rs1, imm) }

func (a *Asm) store(f3 uint32, rs2, rs1 int, imm int64) {
	checkReg(a, rs2, rs1)
	if imm < -2048 || imm > 2047 {
		a.errorf("S-immediate %d out of range", imm)
	}
	a.Word(encS(uint32(imm)&0xFFF, uint32(rs2), uint32(rs1), f3, rv.OpStore))
}

// Sb emits sb rs2, imm(rs1); the other stores follow the same shape.
func (a *Asm) Sb(rs2, rs1 int, imm int64) { a.store(0, rs2, rs1, imm) }
func (a *Asm) Sh(rs2, rs1 int, imm int64) { a.store(1, rs2, rs1, imm) }
func (a *Asm) Sw(rs2, rs1 int, imm int64) { a.store(2, rs2, rs1, imm) }
func (a *Asm) Sd(rs2, rs1 int, imm int64) { a.store(3, rs2, rs1, imm) }

func (a *Asm) opImm(f3 uint32, rd, rs1 int, imm int64) {
	checkReg(a, rd, rs1)
	a.Word(encI(immI12(a, imm), uint32(rs1), f3, uint32(rd), rv.OpImm))
}

// Addi emits addi rd, rs1, imm; the other I-type ALU ops follow.
func (a *Asm) Addi(rd, rs1 int, imm int64)  { a.opImm(0, rd, rs1, imm) }
func (a *Asm) Slti(rd, rs1 int, imm int64)  { a.opImm(2, rd, rs1, imm) }
func (a *Asm) Sltiu(rd, rs1 int, imm int64) { a.opImm(3, rd, rs1, imm) }
func (a *Asm) Xori(rd, rs1 int, imm int64)  { a.opImm(4, rd, rs1, imm) }
func (a *Asm) Ori(rd, rs1 int, imm int64)   { a.opImm(6, rd, rs1, imm) }
func (a *Asm) Andi(rd, rs1 int, imm int64)  { a.opImm(7, rd, rs1, imm) }

// Mv is the mv pseudo-instruction (addi rd, rs1, 0).
func (a *Asm) Mv(rd, rs1 int) { a.Addi(rd, rs1, 0) }

// Nop emits addi x0, x0, 0.
func (a *Asm) Nop() { a.Word(rv.InstrNop) }

// Slli emits slli rd, rs1, sh (0..63).
func (a *Asm) Slli(rd, rs1 int, sh uint32) {
	checkReg(a, rd, rs1)
	if sh > 63 {
		a.errorf("shift %d out of range", sh)
	}
	a.Word(encI(sh, uint32(rs1), 1, uint32(rd), rv.OpImm))
}

// Srli emits srli rd, rs1, sh.
func (a *Asm) Srli(rd, rs1 int, sh uint32) {
	checkReg(a, rd, rs1)
	if sh > 63 {
		a.errorf("shift %d out of range", sh)
	}
	a.Word(encI(sh, uint32(rs1), 5, uint32(rd), rv.OpImm))
}

// Srai emits srai rd, rs1, sh.
func (a *Asm) Srai(rd, rs1 int, sh uint32) {
	checkReg(a, rd, rs1)
	if sh > 63 {
		a.errorf("shift %d out of range", sh)
	}
	a.Word(encI(0x400|sh, uint32(rs1), 5, uint32(rd), rv.OpImm))
}

// Addiw emits addiw rd, rs1, imm.
func (a *Asm) Addiw(rd, rs1 int, imm int64) {
	checkReg(a, rd, rs1)
	a.Word(encI(immI12(a, imm), uint32(rs1), 0, uint32(rd), rv.OpImm32))
}

// Sext32 sign-extends the low 32 bits of rs1 into rd (addiw rd, rs1, 0).
func (a *Asm) Sext32(rd, rs1 int) { a.Addiw(rd, rs1, 0) }

func (a *Asm) opReg(f7, f3 uint32, rd, rs1, rs2 int) {
	checkReg(a, rd, rs1, rs2)
	a.Word(encR(f7, uint32(rs2), uint32(rs1), f3, uint32(rd), rv.OpReg))
}

// Add emits add rd, rs1, rs2; the other R-type ALU ops follow.
func (a *Asm) Add(rd, rs1, rs2 int)  { a.opReg(0, 0, rd, rs1, rs2) }
func (a *Asm) Sub(rd, rs1, rs2 int)  { a.opReg(0x20, 0, rd, rs1, rs2) }
func (a *Asm) Sll(rd, rs1, rs2 int)  { a.opReg(0, 1, rd, rs1, rs2) }
func (a *Asm) Slt(rd, rs1, rs2 int)  { a.opReg(0, 2, rd, rs1, rs2) }
func (a *Asm) Sltu(rd, rs1, rs2 int) { a.opReg(0, 3, rd, rs1, rs2) }
func (a *Asm) Xor(rd, rs1, rs2 int)  { a.opReg(0, 4, rd, rs1, rs2) }
func (a *Asm) Srl(rd, rs1, rs2 int)  { a.opReg(0, 5, rd, rs1, rs2) }
func (a *Asm) Sra(rd, rs1, rs2 int)  { a.opReg(0x20, 5, rd, rs1, rs2) }
func (a *Asm) Or(rd, rs1, rs2 int)   { a.opReg(0, 6, rd, rs1, rs2) }
func (a *Asm) And(rd, rs1, rs2 int)  { a.opReg(0, 7, rd, rs1, rs2) }

// Addw emits addw rd, rs1, rs2.
func (a *Asm) Addw(rd, rs1, rs2 int) {
	checkReg(a, rd, rs1, rs2)
	a.Word(encR(0, uint32(rs2), uint32(rs1), 0, uint32(rd), rv.OpReg32))
}

// Subw emits subw rd, rs1, rs2.
func (a *Asm) Subw(rd, rs1, rs2 int) {
	checkReg(a, rd, rs1, rs2)
	a.Word(encR(0x20, uint32(rs2), uint32(rs1), 0, uint32(rd), rv.OpReg32))
}

// --- M extension ---

func (a *Asm) opM(f3 uint32, rd, rs1, rs2 int) { a.opReg(1, f3, rd, rs1, rs2) }

// Mul emits mul rd, rs1, rs2; the other M-extension ops follow.
func (a *Asm) Mul(rd, rs1, rs2 int)    { a.opM(0, rd, rs1, rs2) }
func (a *Asm) Mulh(rd, rs1, rs2 int)   { a.opM(1, rd, rs1, rs2) }
func (a *Asm) Mulhsu(rd, rs1, rs2 int) { a.opM(2, rd, rs1, rs2) }
func (a *Asm) Mulhu(rd, rs1, rs2 int)  { a.opM(3, rd, rs1, rs2) }
func (a *Asm) Div(rd, rs1, rs2 int)    { a.opM(4, rd, rs1, rs2) }
func (a *Asm) Divu(rd, rs1, rs2 int)   { a.opM(5, rd, rs1, rs2) }
func (a *Asm) Rem(rd, rs1, rs2 int)    { a.opM(6, rd, rs1, rs2) }
func (a *Asm) Remu(rd, rs1, rs2 int)   { a.opM(7, rd, rs1, rs2) }

// --- A extension ---

func (a *Asm) amo(f5 uint32, size int, rd, rs1, rs2 int) {
	checkReg(a, rd, rs1, rs2)
	f3 := uint32(2)
	if size == 8 {
		f3 = 3
	}
	a.Word(encR(f5<<2, uint32(rs2), uint32(rs1), f3, uint32(rd), rv.OpAmo))
}

// LrD emits lr.d rd, (rs1).
func (a *Asm) LrD(rd, rs1 int) { a.amo(0x02, 8, rd, rs1, X0) }

// ScD emits sc.d rd, rs2, (rs1).
func (a *Asm) ScD(rd, rs1, rs2 int) { a.amo(0x03, 8, rd, rs1, rs2) }

// LrW emits lr.w rd, (rs1).
func (a *Asm) LrW(rd, rs1 int) { a.amo(0x02, 4, rd, rs1, X0) }

// ScW emits sc.w rd, rs2, (rs1).
func (a *Asm) ScW(rd, rs1, rs2 int) { a.amo(0x03, 4, rd, rs1, rs2) }

// AmoaddD emits amoadd.d rd, rs2, (rs1); other AMOs follow the same shape.
func (a *Asm) AmoaddD(rd, rs1, rs2 int)  { a.amo(0x00, 8, rd, rs1, rs2) }
func (a *Asm) AmoaddW(rd, rs1, rs2 int)  { a.amo(0x00, 4, rd, rs1, rs2) }
func (a *Asm) AmoswapD(rd, rs1, rs2 int) { a.amo(0x01, 8, rd, rs1, rs2) }
func (a *Asm) AmoswapW(rd, rs1, rs2 int) { a.amo(0x01, 4, rd, rs1, rs2) }
func (a *Asm) AmoorD(rd, rs1, rs2 int)   { a.amo(0x08, 8, rd, rs1, rs2) }
func (a *Asm) AmoandD(rd, rs1, rs2 int)  { a.amo(0x0C, 8, rd, rs1, rs2) }

// --- Zicsr ---

func (a *Asm) csr(f3 uint32, rd int, csrN uint16, src uint32) {
	checkReg(a, rd)
	a.Word(uint32(csrN)<<20 | src<<15 | f3<<12 | uint32(rd)<<7 | rv.OpSystem)
}

// Csrrw emits csrrw rd, csr, rs1; the other CSR ops follow the same shape.
func (a *Asm) Csrrw(rd int, csrN uint16, rs1 int) {
	checkReg(a, rs1)
	a.csr(rv.F3Csrrw, rd, csrN, uint32(rs1))
}

func (a *Asm) Csrrs(rd int, csrN uint16, rs1 int) {
	checkReg(a, rs1)
	a.csr(rv.F3Csrrs, rd, csrN, uint32(rs1))
}

func (a *Asm) Csrrc(rd int, csrN uint16, rs1 int) {
	checkReg(a, rs1)
	a.csr(rv.F3Csrrc, rd, csrN, uint32(rs1))
}

// Csrrwi emits csrrwi rd, csr, zimm (zimm in 0..31).
func (a *Asm) Csrrwi(rd int, csrN uint16, zimm uint32) {
	if zimm > 31 {
		a.errorf("zimm %d out of range", zimm)
	}
	a.csr(rv.F3Csrrwi, rd, csrN, zimm)
}

func (a *Asm) Csrrsi(rd int, csrN uint16, zimm uint32) {
	if zimm > 31 {
		a.errorf("zimm %d out of range", zimm)
	}
	a.csr(rv.F3Csrrsi, rd, csrN, zimm)
}

func (a *Asm) Csrrci(rd int, csrN uint16, zimm uint32) {
	if zimm > 31 {
		a.errorf("zimm %d out of range", zimm)
	}
	a.csr(rv.F3Csrrci, rd, csrN, zimm)
}

// Csrr is the csrr pseudo-instruction (csrrs rd, csr, x0).
func (a *Asm) Csrr(rd int, csrN uint16) { a.Csrrs(rd, csrN, X0) }

// Csrw is the csrw pseudo-instruction (csrrw x0, csr, rs1).
func (a *Asm) Csrw(csrN uint16, rs1 int) { a.Csrrw(X0, csrN, rs1) }

// --- Privileged ---

// Ecall emits ecall.
func (a *Asm) Ecall() { a.Word(rv.InstrEcall) }

// Ebreak emits ebreak.
func (a *Asm) Ebreak() { a.Word(rv.InstrEbreak) }

// Mret emits mret.
func (a *Asm) Mret() { a.Word(rv.InstrMret) }

// Sret emits sret.
func (a *Asm) Sret() { a.Word(rv.InstrSret) }

// Wfi emits wfi.
func (a *Asm) Wfi() { a.Word(rv.InstrWfi) }

// Fence emits fence iorw, iorw.
func (a *Asm) Fence() { a.Word(rv.InstrFence) }

// FenceI emits fence.i.
func (a *Asm) FenceI() { a.Word(rv.InstrFenceI) }

// SfenceVMA emits sfence.vma rs1, rs2.
func (a *Asm) SfenceVMA(rs1, rs2 int) {
	checkReg(a, rs1, rs2)
	a.Word(encR(rv.SfenceVMAFunct7, uint32(rs2), uint32(rs1), 0, 0, rv.OpSystem))
}

// HfenceVVMA emits hfence.vvma rs1, rs2 (VS-stage fence, H extension).
func (a *Asm) HfenceVVMA(rs1, rs2 int) {
	checkReg(a, rs1, rs2)
	a.Word(encR(rv.HfenceVVMAFunct7, uint32(rs2), uint32(rs1), 0, 0, rv.OpSystem))
}

// HfenceGVMA emits hfence.gvma rs1, rs2 (G-stage fence, H extension).
func (a *Asm) HfenceGVMA(rs1, rs2 int) {
	checkReg(a, rs1, rs2)
	a.Word(encR(rv.HfenceGVMAFunct7, uint32(rs2), uint32(rs1), 0, 0, rv.OpSystem))
}

// --- Pseudo-instructions ---

// Li loads an arbitrary 64-bit constant into rd using the shortest of the
// standard expansions (addi / lui+addi(w) / shift-and-or chain).
func (a *Asm) Li(rd int, v uint64) {
	checkReg(a, rd)
	sv := int64(v)
	if sv >= -2048 && sv <= 2047 {
		a.Addi(rd, X0, sv)
		return
	}
	if sv >= -(1<<31) && sv < 1<<31 {
		// lui loads sign-extended hi<<12; addiw supplies the remaining low
		// part. Near +2^31 the rounding wraps the sign-extended lui value,
		// so only take this form when the low part actually fits.
		hi := uint32((sv + 0x800) >> 12)
		lo := sv - int64(int32(hi<<12))
		if lo >= -2048 && lo <= 2047 {
			a.Lui(rd, hi&0xFFFFF)
			if lo != 0 {
				a.Addiw(rd, rd, lo)
			} else {
				a.Sext32(rd, rd)
			}
			return
		}
	}
	// General case: build from the top 32 bits, then shift-or the rest in
	// 11-bit chunks (guaranteed to fit I-immediates).
	a.Li(rd, uint64(sv>>32))
	rest := v & 0xFFFF_FFFF
	for _, shift := range []uint{11, 11, 10} {
		a.Slli(rd, rd, uint32(shift))
		chunk := rest >> (32 - shift) & rv.Mask(shift)
		rest = rest << shift & 0xFFFF_FFFF
		if chunk != 0 {
			a.Addi(rd, rd, int64(chunk))
		}
	}
}

// La loads a label's address pc-relatively (auipc+addi pair).
func (a *Asm) La(rd int, label string) {
	checkReg(a, rd)
	pairPC := a.PC()
	a.fixups = append(a.fixups,
		fixup{word: len(a.words), kind: fixAuipc, label: label, pairPC: pairPC},
		fixup{word: len(a.words) + 1, kind: fixLo12, label: label, pairPC: pairPC})
	a.Word(uint32(rd)<<7 | rv.OpAuipc)
	a.Word(encI(0, uint32(rd), 0, uint32(rd), rv.OpImm))
}

// Call emits a jal ra, label.
func (a *Asm) Call(label string) { a.Jal(RA, label) }

// Space reserves n bytes of zeroed data (n must be a multiple of 4).
func (a *Asm) Space(n uint64) {
	if n%4 != 0 {
		a.errorf("Space(%d): need a multiple of 4", n)
		return
	}
	for i := uint64(0); i < n; i += 4 {
		a.Word(0)
	}
}

// Far branches: an inverted conditional hop over an unconditional jal,
// giving ±1 MiB reach. Used by generated kernels whose loop bodies push
// plain branches past their ±4 KiB range.

func (a *Asm) farBranch(f3 uint32, rs1, rs2 int, label string) {
	checkReg(a, rs1, rs2)
	inv := f3 ^ 1 // beq<->bne, blt<->bge, bltu<->bgeu share this inversion
	// Inverted branch skipping the jal (+8 from this instruction).
	a.Word(uint32(rs2)<<20 | uint32(rs1)<<15 | inv<<12 | rv.OpBranch | encodeB(8))
	a.Jal(X0, label)
}

// BeqFar emits a long-range beq; the other far branches follow.
func (a *Asm) BeqFar(rs1, rs2 int, label string)  { a.farBranch(0, rs1, rs2, label) }
func (a *Asm) BneFar(rs1, rs2 int, label string)  { a.farBranch(1, rs1, rs2, label) }
func (a *Asm) BltFar(rs1, rs2 int, label string)  { a.farBranch(4, rs1, rs2, label) }
func (a *Asm) BgeFar(rs1, rs2 int, label string)  { a.farBranch(5, rs1, rs2, label) }
func (a *Asm) BltuFar(rs1, rs2 int, label string) { a.farBranch(6, rs1, rs2, label) }
func (a *Asm) BgeuFar(rs1, rs2 int, label string) { a.farBranch(7, rs1, rs2, label) }

// BeqzFar and BnezFar are the x0 comparisons.
func (a *Asm) BeqzFar(rs1 int, label string) { a.BeqFar(rs1, X0, label) }
func (a *Asm) BnezFar(rs1 int, label string) { a.BneFar(rs1, X0, label) }
