package bench

import (
	"fmt"
	"time"

	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
)

// Fork latency: the cost of producing one more runnable machine, the
// copy-on-write way versus the cold-boot way. A campaign case needs a
// monitored machine advanced to a known mid-boot point; cold-boot pays
// firmware/kernel build + machine construction + warmup simulation per
// case, while fork pays one snapshot up front and a page-table copy plus
// monitor fork per case. The mini-campaign rows measure end-to-end
// cases/sec for both strategies — each case still simulates the tail of
// the boot to completion, so the speedup is bounded by how much of the
// per-case work the shared snapshot absorbs.

// ForkLatencyResult is the fork-vs-cold-boot comparison on one platform.
type ForkLatencyResult struct {
	Platform    string `json:"platform"`
	Cases       int    `json:"cases"`
	WarmupSteps uint64 `json:"warmup_steps"` // steps absorbed by the shared snapshot
	CaseSteps   uint64 `json:"case_steps"`   // steps each case still simulates
	ImagePages  int    `json:"image_pages"`  // 4 KiB pages in the shared image

	SpawnNsPerCase int64 `json:"spawn_ns_per_case"` // fork only: spawn+monitor-fork
	ForkNsPerCase  int64 `json:"fork_ns_per_case"`  // fork: spawn + run tail
	ColdNsPerCase  int64 `json:"cold_ns_per_case"`  // cold: build + warmup + run tail

	ForkCasesPerSec float64 `json:"fork_cases_per_sec"`
	ColdCasesPerSec float64 `json:"cold_cases_per_sec"`
	Speedup         float64 `json:"speedup"` // cold ns / fork ns per case
}

// forkCampaignWorkload is the per-case guest: a CoreMark-Pro-class
// compute kernel sized so one case simulates a few hundred thousand
// steps — the scale at which a campaign actually amortizes its boots.
func forkCampaignWorkload() *WorkloadSpec {
	return &WorkloadSpec{
		Name:          "fork-campaign",
		Iterations:    100,
		ComputeN:      1800,
		MemN:          10,
		WorkingSet:    4 << 10,
		TimeReadEvery: 9,
		TimerSetEvery: 97,
	}
}

// forkBenchSystem builds the canonical monitored campaign case: gosbi
// firmware plus the compute workload kernel, offload on (the paper's
// default configuration), one hart.
func forkBenchSystem(mk func() *hart.Config) (*hart.Machine, *core.Monitor, error) {
	cfg := mk()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		return nil, nil, err
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	if err := m.LoadImage(core.FirmwareBase, fw.Bytes); err != nil {
		return nil, nil, err
	}
	kern := forkCampaignWorkload().BuildKernel(core.OSBase)
	if err := m.LoadImage(core.OSBase, kern); err != nil {
		return nil, nil, err
	}
	mon, err := core.Attach(m, core.Options{Offload: true, FirmwareEntry: core.FirmwareBase})
	if err != nil {
		return nil, nil, err
	}
	mon.Boot()
	return m, mon, nil
}

// forkBootSteps probes how many steps the scenario takes to halt.
func forkBootSteps(mk func() *hart.Config) (uint64, error) {
	m, _, err := forkBenchSystem(mk)
	if err != nil {
		return 0, err
	}
	var total uint64
	for i := 0; i < 10_000; i++ {
		n, _ := m.Run(1_000)
		total += n
		if ok, reason := m.Halted(); ok {
			if reason != "guest-exit-pass" {
				return 0, fmt.Errorf("fork bench probe halted with %q", reason)
			}
			return total, nil
		}
	}
	return 0, fmt.Errorf("fork bench probe did not halt in %d steps", total)
}

// ForkLatency runs the comparison: a cases-sized mini-campaign where every
// case must finish the boot with guest-exit-pass, once with each case
// cold-booted from scratch and once with each case forked from a shared
// late-boot snapshot.
func ForkLatency(mk func() *hart.Config, cases int) (*ForkLatencyResult, error) {
	if cases < 1 {
		cases = 1
	}
	bootSteps, err := forkBootSteps(mk)
	if err != nil {
		return nil, err
	}
	// Snapshot late in the boot — the campaign model is "boot once to
	// steady state, then each case runs its own short tail", so the shared
	// image absorbs 15/16 of the per-case simulation.
	warmup := bootSteps - bootSteps/16
	if warmup == 0 {
		warmup = 1
	}
	caseSteps := bootSteps - warmup + 4_096 // margin: halt, don't race the budget

	// Fork strategy: one parent booted and snapshotted, then every case
	// spawns a COW child with a forked monitor and runs only the tail.
	parent, pmon, err := forkBenchSystem(mk)
	if err != nil {
		return nil, err
	}
	parent.Run(warmup)
	if ok, reason := parent.Halted(); ok {
		return nil, fmt.Errorf("fork bench parent halted during warmup: %q", reason)
	}
	img, err := parent.Snapshot()
	if err != nil {
		return nil, err
	}

	res := &ForkLatencyResult{
		Platform:    mk().Name,
		Cases:       cases,
		WarmupSteps: warmup,
		CaseSteps:   caseSteps,
		ImagePages:  img.Mem.Pages(),
	}

	var spawnNs int64
	forkStart := time.Now()
	for i := 0; i < cases; i++ {
		t0 := time.Now()
		child, err := hart.SpawnFromImage(img)
		if err != nil {
			return nil, err
		}
		if _, err := pmon.Fork(child); err != nil {
			return nil, err
		}
		spawnNs += time.Since(t0).Nanoseconds()
		child.Run(caseSteps)
		if ok, reason := child.Halted(); !ok || reason != "guest-exit-pass" {
			return nil, fmt.Errorf("fork case %d: halted=%v reason=%q", i, ok, reason)
		}
	}
	forkNs := time.Since(forkStart).Nanoseconds()

	coldStart := time.Now()
	for i := 0; i < cases; i++ {
		m, _, err := forkBenchSystem(mk)
		if err != nil {
			return nil, err
		}
		m.Run(warmup)
		m.Run(caseSteps)
		if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
			return nil, fmt.Errorf("cold case %d: halted=%v reason=%q", i, ok, reason)
		}
	}
	coldNs := time.Since(coldStart).Nanoseconds()

	res.SpawnNsPerCase = spawnNs / int64(cases)
	res.ForkNsPerCase = forkNs / int64(cases)
	res.ColdNsPerCase = coldNs / int64(cases)
	res.ForkCasesPerSec = float64(cases) / (float64(forkNs) / 1e9)
	res.ColdCasesPerSec = float64(cases) / (float64(coldNs) / 1e9)
	if forkNs > 0 {
		res.Speedup = float64(coldNs) / float64(forkNs)
	}
	return res, nil
}
