package bench

// The workload catalog: synthetic models of the paper's benchmark
// applications. Each spec's compute/memory mix and trap mix is chosen so
// the induced trap-to-M rate on the VisionFive 2 profile lands near the
// rate the paper reports for the real application (§8.3.2-§8.3.3:
// CoreMark-Pro ≈11k traps/s, Redis ≈272k/s, Memcached ≈388k/s), which is
// the quantity that determines virtualization overhead.

// CoreMarkPro returns the nine CoreMark-Pro-style CPU sub-benchmarks
// (Fig. 10): compute- and memory-bound kernels with the low trap rate of a
// CPU-bound process (timer ticks and occasional clock reads).
func CoreMarkPro() []*WorkloadSpec {
	mk := func(name string, compute, mem int, ws uint64) *WorkloadSpec {
		return &WorkloadSpec{
			Name:          "cmp-" + name,
			Iterations:    300,
			ComputeN:      compute,
			MemN:          mem,
			WorkingSet:    ws,
			TimeReadEvery: 9, // scheduler clock reads: ~11k traps/s
			TimerSetEvery: 97,
		}
	}
	return []*WorkloadSpec{
		mk("cjpeg", 1200, 120, 64<<10),
		mk("core", 1800, 10, 4<<10),
		mk("linear-alg", 600, 500, 256<<10),
		mk("loops-all", 2000, 40, 16<<10),
		mk("nnet", 800, 400, 128<<10),
		mk("parser", 1000, 200, 32<<10),
		mk("radix2", 500, 550, 256<<10),
		mk("sha", 1900, 20, 4<<10),
		mk("zip", 1100, 250, 64<<10),
	}
}

// IOzone returns the disk-I/O workloads (Fig. 11): each iteration
// processes one 128 KiB record through a copy loop, with the misaligned
// accesses and clock reads a filesystem path induces.
func IOzone() map[string]*WorkloadSpec {
	mk := func(name string, compute int) *WorkloadSpec {
		return &WorkloadSpec{
			Name:            "iozone-" + name,
			Iterations:      160,
			ComputeN:        compute,
			MemN:            2048, // 128 KiB record at 64-byte stride
			WorkingSet:      128 << 10,
			TimeReadEvery:   1, // completion timestamping per record
			MisalignedEvery: 2, // unaligned buffer handling
			TimerSetEvery:   40,
		}
	}
	return map[string]*WorkloadSpec{
		"read":  mk("read", 100),
		"write": mk("write", 220), // write path does more bookkeeping
	}
}

// RecordBytes is the IOzone record size (for throughput conversion).
const RecordBytes = 128 << 10

// Memcached returns the closed-loop key-value workload (Fig. 12): small
// requests with two clock reads each (the network stack timestamps
// receive and send), the paper's highest trap rate (≈388k traps/s).
func Memcached() *WorkloadSpec {
	return &WorkloadSpec{
		Name:          "memcached",
		Iterations:    4000,
		ComputeN:      900,
		MemN:          40,
		WorkingSet:    512 << 10,
		TimeReadEvery: 1, // every request reads the clock
		IPIEvery:      67,
		TimerSetEvery: 127,
		Samples:       2000,
	}
}

// Applications returns the Fig. 13 application set.
func Applications() []*WorkloadSpec {
	return []*WorkloadSpec{
		{
			// Redis: single-threaded event loop, ≈272k traps/s.
			Name:          "redis",
			Iterations:    2500,
			ComputeN:      1500,
			MemN:          60,
			WorkingSet:    1 << 20,
			TimeReadEvery: 1,
			TimerSetEvery: 101,
		},
		Memcached(),
		{
			// MySQL: mixed CPU/disk/network transaction processing.
			Name:            "mysql",
			Iterations:      600,
			ComputeN:        4000,
			MemN:            700,
			WorkingSet:      2 << 20,
			TimeReadEvery:   1,
			MisalignedEvery: 11,
			RfenceEvery:     31,
			TimerSetEvery:   53,
		},
		{
			// GCC: compute-bound compilation with rare kernel interaction.
			Name:          "gcc",
			Iterations:    250,
			ComputeN:      6000,
			MemN:          600,
			WorkingSet:    4 << 20,
			TimeReadEvery: 17,
			TimerSetEvery: 83,
		},
	}
}

// RV8 returns the RV8 benchmark suite (Fig. 14): pure compute/memory
// kernels run natively and inside a Keystone enclave.
func RV8() []*WorkloadSpec {
	mk := func(name string, compute, mem int, ws uint64) *WorkloadSpec {
		return &WorkloadSpec{
			Name: "rv8-" + name, Iterations: 250,
			ComputeN: compute, MemN: mem, WorkingSet: ws,
		}
	}
	return []*WorkloadSpec{
		mk("aes", 1500, 120, 16<<10),
		mk("dhrystone", 1800, 60, 8<<10),
		mk("miniz", 900, 420, 128<<10),
		mk("norx", 1400, 150, 16<<10),
		mk("primes", 2100, 8, 4<<10),
		mk("qsort", 700, 500, 256<<10),
		mk("sha512", 1900, 40, 8<<10),
	}
}
