package bench

import (
	"testing"
	"time"

	"govfm/internal/hart"
)

// TestSimHostInvariance runs the host-throughput sweep on one platform;
// SimHost itself fails if the caches change a single simulated cycle, so
// this doubles as the cycle-model invariance check over real workloads.
func TestSimHostInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simhost sweep is not short")
	}
	res, err := SimHost(hart.VisionFive2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(simHostCases()) {
		t.Fatalf("got %d results, want %d", len(res), len(simHostCases()))
	}
	for _, r := range res {
		if r.Instret == 0 || r.Cycles == 0 || r.HostNsOn <= 0 || r.HostNsOff <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Workload, r)
		}
		t.Logf("%-18s instret=%-9d off=%6.2f MIPS  on=%7.2f MIPS  speedup=%.2fx",
			r.Workload, r.Instret, r.MIPSOff, r.MIPSOn, r.Speedup)
	}
	t.Logf("geomean speedup: %.2fx", GeomeanSpeedup(res))
}

// BenchmarkTable4Operations measures host throughput of the two Table 4
// probe workloads (instruction emulation and the full world-switch round
// trip) with the fast paths on, reporting simulated-MIPS alongside ns/op.
// scripts/verify.sh runs it with -benchtime=1x as a compile-and-run gate.
func BenchmarkTable4Operations(b *testing.B) {
	var instret uint64
	var hostNs int64
	for i := 0; i < b.N; i++ {
		for _, c := range simHostCases()[:2] { // emulation-loop, worldswitch-loop
			m, err := c.setup(hart.VisionFive2)
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			m.Run(2_000_000_000)
			hostNs += time.Since(start).Nanoseconds()
			if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
				b.Fatalf("%s: %v %q", c.name, ok, reason)
			}
			instret += m.Harts[0].Instret
		}
	}
	if hostNs > 0 {
		b.ReportMetric(float64(instret)*1e3/float64(hostNs), "mips")
		b.ReportMetric(float64(hostNs)/float64(instret), "host-ns/instr")
	}
}
