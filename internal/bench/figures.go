package bench

import (
	"fmt"
	"sort"
	"strings"

	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
	"govfm/internal/obs"
	"govfm/internal/policy/keystone"
	"govfm/internal/trace"
)

// This file regenerates the paper's evaluation figures: each function runs
// the relevant workloads across the three system configurations and
// returns the same rows/series the paper plots, plus a Format method used
// by cmd/benchall and the top-level benchmarks.

// FigRow is one (workload, mode) measurement in a relative-performance
// figure.
type FigRow struct {
	Workload string
	Relative map[Mode]float64 // native-relative score (1.0 = parity)
	TrapRate float64          // traps/s in the native run
}

// FigResult is a whole figure.
type FigResult struct {
	Title string
	Rows  []FigRow
}

// Format renders the figure as an aligned text table.
func (f *FigResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-16s %10s %10s %12s %14s\n",
		"workload", "native", "miralis", "no-offload", "traps/s(nat)")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-16s %10.3f %10.3f %12.3f %14.0f\n",
			r.Workload, r.Relative[Native], r.Relative[Miralis],
			r.Relative[MiralisNoOffload], r.TrapRate)
	}
	return b.String()
}

// relRows runs each workload in all three modes and builds native-relative
// rows.
func relRows(r *Runner, specs []*WorkloadSpec) ([]FigRow, error) {
	rows := make([]FigRow, 0, len(specs))
	for _, w := range specs {
		all, err := r.RunAll(w)
		if err != nil {
			return nil, err
		}
		row := FigRow{
			Workload: w.Name,
			Relative: make(map[Mode]float64, 3),
			TrapRate: all[Native].TrapRate,
		}
		for _, mode := range Modes {
			row.Relative[mode] = RelativeScore(all[Native], all[mode])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10 reproduces the CoreMark-Pro relative scores.
func Fig10(newCfg func() *hart.Config) (*FigResult, error) {
	r := &Runner{NewConfig: newCfg, Sandbox: true}
	rows, err := relRows(r, CoreMarkPro())
	if err != nil {
		return nil, err
	}
	return &FigResult{Title: "Fig. 10: Relative CoreMark-Pro scores", Rows: rows}, nil
}

// Fig11Result holds IOzone throughput in MB/s of simulated time.
type Fig11Result struct {
	Throughput map[string]map[Mode]float64 // read/write -> mode -> MB/s
}

// Format renders Fig. 11.
func (f *Fig11Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11: IOzone throughput (MB/s, 128K records)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %12s\n", "op", "native", "miralis", "no-offload")
	for _, op := range []string{"read", "write"} {
		m := f.Throughput[op]
		fmt.Fprintf(&b, "%-8s %10.1f %10.1f %12.1f\n",
			op, m[Native], m[Miralis], m[MiralisNoOffload])
	}
	return b.String()
}

// Fig11 reproduces the IOzone throughput comparison.
func Fig11(newCfg func() *hart.Config) (*Fig11Result, error) {
	r := &Runner{NewConfig: newCfg, Sandbox: true}
	out := &Fig11Result{Throughput: make(map[string]map[Mode]float64)}
	for op, w := range IOzone() {
		all, err := r.RunAll(w)
		if err != nil {
			return nil, err
		}
		out.Throughput[op] = make(map[Mode]float64, 3)
		for _, mode := range Modes {
			bytes := float64(w.Iterations) * RecordBytes
			out.Throughput[op][mode] = bytes / all[mode].SimTime / 1e6
		}
	}
	return out, nil
}

// Fig12Result is the Memcached latency distribution.
type Fig12Result struct {
	// PercentilesNs maps mode -> percentile -> latency in ns.
	PercentilesNs map[Mode]map[int]float64
}

// Fig12Percentiles are the reported distribution points.
var Fig12Percentiles = []int{25, 50, 75, 90, 95, 99}

// Format renders Fig. 12.
func (f *Fig12Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12: Memcached request latency distribution (ns)\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %12s\n", "pct", "native", "miralis", "no-offload")
	for _, p := range Fig12Percentiles {
		fmt.Fprintf(&b, "p%-5d %10.0f %10.0f %12.0f\n", p,
			f.PercentilesNs[Native][p], f.PercentilesNs[Miralis][p],
			f.PercentilesNs[MiralisNoOffload][p])
	}
	return b.String()
}

// Fig12 reproduces the closed-loop latency distribution.
func Fig12(newCfg func() *hart.Config) (*Fig12Result, error) {
	r := &Runner{NewConfig: newCfg, Sandbox: true}
	cfg := newCfg()
	out := &Fig12Result{PercentilesNs: make(map[Mode]map[int]float64)}
	w := Memcached()
	for _, mode := range Modes {
		met, err := r.Run(w, mode)
		if err != nil {
			return nil, err
		}
		out.PercentilesNs[mode] = make(map[int]float64, len(Fig12Percentiles))
		for _, p := range Fig12Percentiles {
			cyc := Percentile(met.LatencySamples, float64(p))
			out.PercentilesNs[mode][p] = NsPerOp(cfg, float64(cyc))
		}
	}
	return out, nil
}

// Fig13 reproduces the application-workload comparison for one platform.
func Fig13(newCfg func() *hart.Config) (*FigResult, error) {
	r := &Runner{NewConfig: newCfg, Sandbox: true}
	rows, err := relRows(r, Applications())
	if err != nil {
		return nil, err
	}
	cfg := newCfg()
	return &FigResult{
		Title: fmt.Sprintf("Fig. 13: Application workloads (%s)", cfg.Name),
		Rows:  rows,
	}, nil
}

// Fig14Row is one RV8 benchmark: enclave performance relative to a native
// process under the same Miralis+Keystone stack.
type Fig14Row struct {
	Benchmark string
	Relative  float64
}

// Fig14Result is the Keystone RV8 figure.
type Fig14Result struct {
	Rows    []Fig14Row
	Average float64
}

// Format renders Fig. 14.
func (f *Fig14Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14: Keystone enclaves on RV8 (relative to native process)\n")
	fmt.Fprintf(&b, "%-14s %10s\n", "benchmark", "relative")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-14s %10.3f\n", r.Benchmark, r.Relative)
	}
	fmt.Fprintf(&b, "%-14s %10.3f\n", "average", f.Average)
	return b.String()
}

// Fig14 runs each RV8 kernel natively and inside a Keystone enclave, both
// under Miralis with the Keystone policy and a periodic preemption timer.
func Fig14(newCfg func() *hart.Config) (*Fig14Result, error) {
	out := &Fig14Result{}
	var sum float64
	for _, w := range RV8() {
		nat, err := runRV8(newCfg, w, false)
		if err != nil {
			return nil, err
		}
		enc, err := runRV8(newCfg, w, true)
		if err != nil {
			return nil, err
		}
		rel := float64(nat) / float64(enc)
		out.Rows = append(out.Rows, Fig14Row{Benchmark: w.Name, Relative: rel})
		sum += rel
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].Benchmark < out.Rows[j].Benchmark })
	out.Average = sum / float64(len(out.Rows))
	return out, nil
}

// runRV8 measures one RV8 kernel's cycles, either as a plain process
// workload or inside an enclave, under Miralis + the Keystone policy.
func runRV8(newCfg func() *hart.Config, w *WorkloadSpec, enclave bool) (uint64, error) {
	cfg := newCfg()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		return 0, err
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	if err := m.LoadImage(core.FirmwareBase, fw.Bytes); err != nil {
		return 0, err
	}
	pol := keystone.New()
	mon, err := core.Attach(m, core.Options{
		Policy: pol, Offload: true, FirmwareEntry: core.FirmwareBase,
	})
	if err != nil {
		return 0, err
	}
	if enclave {
		host := kernel.BuildRV8Host(core.OSBase, kernel.EnclaveBase, kernel.EnclaveSize, 200)
		payload := kernel.BuildRV8Enclave(kernel.EnclaveBase, w.Iterations, w.ComputeN, w.MemN)
		if err := m.LoadImage(core.OSBase, host); err != nil {
			return 0, err
		}
		if err := m.LoadImage(kernel.EnclaveBase, payload); err != nil {
			return 0, err
		}
	} else {
		// The same compute as a plain process: a workload kernel with a
		// matching periodic timer tick.
		spec := *w
		spec.TimerSetEvery = 13 // comparable preemption pressure
		if err := m.LoadImage(core.OSBase, spec.BuildKernel(core.OSBase)); err != nil {
			return 0, err
		}
	}
	mon.Boot()
	m.Run(2_000_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		return 0, fmt.Errorf("rv8 %s (enclave=%v) failed: %v %q", w.Name, enclave, ok, reason)
	}
	return m.Harts[0].Cycles, nil
}

// Fig3Result is the windowed trap-cause distribution over the boot.
type Fig3Result struct {
	Collector *trace.Collector
	TopShare  float64
	BootTraps uint64
	// NativeTrapRate is the native boot's traps/s of simulated time
	// (the paper: ~5500/s during boot).
	NativeTrapRate float64
	// WorldSwitchRate is the with-offload world-switch rate during boot
	// (the paper: 1.17/s).
	WorldSwitchRate float64
}

// Format renders Fig. 3 as windowed percentages.
func (f *Fig3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3: M-mode trap causes during boot (windows over mtime)\n")
	fmt.Fprintf(&b, "%-10s", "window")
	for _, c := range trace.Buckets {
		fmt.Fprintf(&b, "%12s", c)
	}
	fmt.Fprintf(&b, "\n")
	for i, w := range f.Collector.Windows {
		var total uint64
		for _, v := range w.Counts {
			total += v
		}
		fmt.Fprintf(&b, "%-10d", i)
		for _, c := range trace.Buckets {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(w.Counts[c]) / float64(total)
			}
			fmt.Fprintf(&b, "%11.1f%%", pct)
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "top-5 cause share: %.2f%%   traps: %d   world-switches/s (offload): %.2f\n",
		100*f.TopShare, f.BootTraps, f.WorldSwitchRate)
	return b.String()
}

// Fig3 runs the boot sequence natively, collecting the windowed trap-cause
// distribution, then again under Miralis with offload to measure the
// residual world-switch rate.
func Fig3(newCfg func() *hart.Config, windowTicks uint64) (*Fig3Result, error) {
	cfg := newCfg()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		return nil, err
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	if err := m.LoadImage(core.FirmwareBase, fw.Bytes); err != nil {
		return nil, err
	}
	if err := m.LoadImage(core.OSBase, BootWorkload(1)); err != nil {
		return nil, err
	}
	// Ride the observability event stream rather than the hart trap hook:
	// a storeless tracer delivers every trap instant to the collector
	// without paying for ring storage.
	col := trace.NewCollector(windowTicks, m.Clint.Time)
	evs := obs.NewTracer(0)
	m.Harts[0].Trace = evs
	col.AttachTracer(evs)
	m.Reset(core.FirmwareBase)
	m.Run(2_000_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		return nil, fmt.Errorf("boot trace failed: %v %q", ok, reason)
	}
	res := &Fig3Result{Collector: col, TopShare: col.TopShare(), BootTraps: col.TrapsToM}
	if simTime := float64(m.Harts[0].Cycles) / (float64(cfg.FreqMHz) * 1e6); simTime > 0 {
		res.NativeTrapRate = float64(col.TrapsToM) / simTime
	}

	// Offloaded boot for the world-switch rate.
	r := &Runner{NewConfig: newCfg}
	cfg2 := newCfg()
	cfg2.Harts = 1
	m2, err := hart.NewMachine(cfg2, core.DramSize)
	if err != nil {
		return nil, err
	}
	_ = m2.LoadImage(core.FirmwareBase, fw.Bytes)
	_ = m2.LoadImage(core.OSBase, BootWorkload(1))
	mon, err := core.Attach(m2, core.Options{Offload: true, FirmwareEntry: core.FirmwareBase})
	if err != nil {
		return nil, err
	}
	mon.Boot()
	m2.Run(2_000_000_000)
	if ok, reason := m2.Halted(); !ok || reason != "guest-exit-pass" {
		return nil, fmt.Errorf("offloaded boot failed: %v %q", ok, reason)
	}
	simTime := float64(m2.Harts[0].Cycles) / (float64(cfg2.FreqMHz) * 1e6)
	if simTime > 0 {
		res.WorldSwitchRate = float64(mon.TotalStats().WorldSwitches) / simTime
	}
	_ = r
	return res, nil
}

// BootTimeResult compares boot duration across configurations (§8.3.2).
type BootTimeResult struct {
	Seconds map[Mode]float64
}

// Format renders the boot-time comparison.
func (f *BootTimeResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Boot time (simulated seconds)\n")
	fmt.Fprintf(&b, "%-12s %10.4f\n", "native", f.Seconds[Native])
	fmt.Fprintf(&b, "%-12s %10.4f (%+.1f%%)\n", "miralis", f.Seconds[Miralis],
		100*(f.Seconds[Miralis]/f.Seconds[Native]-1))
	fmt.Fprintf(&b, "%-12s %10.4f (%+.1f%%)\n", "no-offload", f.Seconds[MiralisNoOffload],
		100*(f.Seconds[MiralisNoOffload]/f.Seconds[Native]-1))
	return b.String()
}

// BootTime measures the boot sequence in the three configurations.
func BootTime(newCfg func() *hart.Config) (*BootTimeResult, error) {
	out := &BootTimeResult{Seconds: make(map[Mode]float64)}
	for _, mode := range Modes {
		cyc, err := runKernelImage(newCfg, BootWorkload(1), mode)
		if err != nil {
			return nil, err
		}
		cfg := newCfg()
		out.Seconds[mode] = float64(cyc) / (float64(cfg.FreqMHz) * 1e6)
	}
	return out, nil
}

// RVA23Result is the forward-looking ablation of §3.4: on a CPU with a
// hardware time CSR and Sstc, fast-path offloading becomes unnecessary.
type RVA23Result struct {
	// Relative performance without offloading, per platform.
	NoOffloadRelative map[string]float64
	// World switches during the run without offloading, per platform.
	NoOffloadSwitches map[string]uint64
}

// Format renders the ablation.
func (f *RVA23Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RVA23 ablation: Redis-profile workload without fast-path offloading\n")
	fmt.Fprintf(&b, "%-14s %22s %20s\n", "platform", "no-offload relative", "world switches")
	for _, p := range []string{"visionfive2", "rva23"} {
		fmt.Fprintf(&b, "%-14s %22.3f %20d\n", p, f.NoOffloadRelative[p], f.NoOffloadSwitches[p])
	}
	return b.String()
}

// RVA23Ablation runs the Redis-profile workload without offloading on the
// VisionFive 2 (where every clock read and timer deadline traps) and on an
// RVA23-class CPU (hardware time CSR + Sstc): the overhead must vanish on
// the latter, confirming the paper's §3.4 prediction.
func RVA23Ablation() (*RVA23Result, error) {
	out := &RVA23Result{
		NoOffloadRelative: make(map[string]float64),
		NoOffloadSwitches: make(map[string]uint64),
	}
	for _, mkp := range []struct {
		mk   func() *hart.Config
		sstc bool
	}{{hart.VisionFive2, false}, {hart.RVA23, true}} {
		cfg := mkp.mk()
		w := &WorkloadSpec{
			Name: "redis-ablation", Iterations: 1200,
			ComputeN: 1500, MemN: 60, WorkingSet: 1 << 20,
			TimeReadEvery: 1, TimerSetEvery: 101,
			UseSstc: mkp.sstc,
		}
		r := &Runner{NewConfig: mkp.mk}
		nat, err := r.Run(w, Native)
		if err != nil {
			return nil, err
		}
		noo, err := r.Run(w, MiralisNoOffload)
		if err != nil {
			return nil, err
		}
		out.NoOffloadRelative[cfg.Name] = RelativeScore(nat, noo)
		out.NoOffloadSwitches[cfg.Name] = noo.WorldSwitches
	}
	return out, nil
}

// OffloadAblationResult sweeps the fast-path mask on a mixed workload:
// which of the five offloaded operations buys how much (the design-choice
// ablation for §3.4).
type OffloadAblationResult struct {
	// Relative performance vs native per configuration name.
	Relative map[string]float64
	// Order lists the configurations from none to all.
	Order []string
}

// Format renders the ablation.
func (f *OffloadAblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fast-path ablation (memcached profile, relative to native)\n")
	fmt.Fprintf(&b, "%-28s %10s\n", "offloaded operations", "relative")
	for _, name := range f.Order {
		fmt.Fprintf(&b, "%-28s %10.3f\n", name, f.Relative[name])
	}
	return b.String()
}

// OffloadAblation measures the memcached-profile workload with
// progressively more fast paths enabled.
func OffloadAblation(newCfg func() *hart.Config) (*OffloadAblationResult, error) {
	w := Memcached()
	w.Samples = 0
	w.MisalignedEvery = 7 // give the misaligned path traffic too

	cfgs := []struct {
		name string
		mask core.OffloadOp
		off  bool
	}{
		{"none", 0, false},
		{"time-read", core.OffloadTimeRead, true},
		{"time-read+timer", core.OffloadTimeRead | core.OffloadTimer, true},
		{"tr+timer+misaligned", core.OffloadTimeRead | core.OffloadTimer |
			core.OffloadMisaligned, true},
		{"all", core.OffloadAll, true},
	}
	out := &OffloadAblationResult{Relative: make(map[string]float64)}

	// Native baseline (no monitor at all).
	r := &Runner{NewConfig: newCfg}
	natM, err := r.Run(w, Native)
	if err != nil {
		return nil, err
	}
	nat := natM.Cycles
	for _, c := range cfgs {
		cyc, err := runMasked(newCfg, w, c.off, c.mask)
		if err != nil {
			return nil, err
		}
		out.Relative[c.name] = float64(nat) / float64(cyc)
		out.Order = append(out.Order, c.name)
	}
	return out, nil
}

// runMasked boots the workload under the monitor with a specific offload
// mask and returns the cycle count.
func runMasked(newCfg func() *hart.Config, w *WorkloadSpec, offload bool, mask core.OffloadOp) (uint64, error) {
	cfg := newCfg()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		return 0, err
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	if err := m.LoadImage(core.FirmwareBase, fw.Bytes); err != nil {
		return 0, err
	}
	if err := m.LoadImage(core.OSBase, w.BuildKernel(core.OSBase)); err != nil {
		return 0, err
	}
	mon, err := core.Attach(m, core.Options{
		Offload: offload, OffloadMask: mask, FirmwareEntry: core.FirmwareBase,
	})
	if err != nil {
		return 0, err
	}
	mon.Boot()
	m.Run(2_000_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		return 0, fmt.Errorf("ablation run (%v/%#x) failed: %v %q", offload, mask, ok, reason)
	}
	return m.Harts[0].Cycles, nil
}
