package bench

import (
	"fmt"

	"govfm/internal/asm"
	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/rv"
)

// Microbenchmarks for Tables 4 and 5: per-operation cycle costs measured
// by two-point differencing (run the loop with N1 and N2 operations and
// divide the cycle delta by the op delta), which cancels boot and loop
// overhead exactly.

// buildCsrwFirmware builds a minimal firmware that executes n emulated
// "csrw mscratch, x0" instructions (the paper's Table 4 probe) and halts.
func buildCsrwFirmware(base uint64, n int) []byte {
	a := asm.New(base)
	a.Label("start")
	a.Li(asm.S0, uint64(n))
	a.Beqz(asm.S0, "done")
	a.Label("loop")
	a.Csrw(rv.CSRMscratch, asm.X0) // traps to the monitor in vM-mode
	a.Addi(asm.S0, asm.S0, -1)
	a.Bnez(asm.S0, "loop")
	a.Label("done")
	a.Li(asm.T0, hart.ExitBase)
	a.Li(asm.T1, hart.ExitPass)
	a.Sd(asm.T1, asm.T0, 0)
	a.Label("hang")
	a.J("hang")
	return a.MustAssemble()
}

// buildEcallKernel builds a kernel performing n SBI calls to an
// unsupported extension — the firmware's shortest path, measuring the full
// OS -> VFM -> firmware -> VFM -> OS round trip of Table 4.
func buildEcallKernel(base uint64, n int) []byte {
	a := asm.New(base)
	a.Li(asm.S0, uint64(n))
	a.Beqz(asm.S0, "done")
	a.Li(asm.A7, 0x0BADBEEF) // unknown extension: ENOTSUP immediately
	a.Li(asm.A6, 0)
	a.Label("loop")
	a.Ecall()
	a.Addi(asm.S0, asm.S0, -1)
	a.Bnez(asm.S0, "loop")
	a.Label("done")
	a.Li(asm.A0, 0)
	a.Li(asm.A7, rv.SBIExtReset)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Label("hang")
	a.J("hang")
	return a.MustAssemble()
}

// buildTimeReadKernel builds a kernel reading the time CSR n times in a
// tight loop (Table 5, "read time").
func buildTimeReadKernel(base uint64, n int) []byte {
	a := asm.New(base)
	a.Li(asm.S0, uint64(n))
	a.Beqz(asm.S0, "done")
	a.Label("loop")
	a.Csrr(asm.T0, rv.CSRTime)
	a.Addi(asm.S0, asm.S0, -1)
	a.Bnez(asm.S0, "loop")
	a.Label("done")
	a.Li(asm.A0, 0)
	a.Li(asm.A7, rv.SBIExtReset)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Label("hang")
	a.J("hang")
	return a.MustAssemble()
}

// buildIPIKernel builds a kernel sending n self-IPIs, taking the resulting
// supervisor software interrupt each time (Table 5, "IPI").
func buildIPIKernel(base uint64, n int) []byte {
	a := asm.New(base)
	a.La(asm.T0, "strap")
	a.Csrw(rv.CSRStvec, asm.T0)
	a.Li(asm.T0, 1<<rv.IntSSoft)
	a.Csrrs(asm.X0, rv.CSRSie, asm.T0)
	a.Li(asm.S0, uint64(n))
	a.Beqz(asm.S0, "done")
	a.Label("loop")
	a.La(asm.T0, "got_ipi")
	a.Sd(asm.X0, asm.T0, 0)
	a.Li(asm.A0, 1) // hart mask: self
	a.Li(asm.A1, 0)
	a.Li(asm.A7, rv.SBIExtIPI)
	a.Li(asm.A6, rv.SBIIPISendIPI)
	a.Ecall()
	a.Csrrsi(asm.X0, rv.CSRSstatus, 1<<rv.MstatusSIE)
	a.Label("wait")
	a.La(asm.T0, "got_ipi")
	a.Ld(asm.T1, asm.T0, 0)
	a.Beqz(asm.T1, "wait")
	a.Csrrci(asm.X0, rv.CSRSstatus, 1<<rv.MstatusSIE)
	a.Addi(asm.S0, asm.S0, -1)
	a.Bnez(asm.S0, "loop")
	a.Label("done")
	a.Li(asm.A0, 0)
	a.Li(asm.A7, rv.SBIExtReset)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Label("hang")
	a.J("hang")
	a.Label("strap")
	a.Li(asm.T0, 1<<rv.IntSSoft)
	a.Csrrc(asm.X0, rv.CSRSip, asm.T0)
	a.La(asm.T0, "got_ipi")
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.Sret()
	a.Align(8)
	a.Label("got_ipi")
	a.Space(8)
	return a.MustAssemble()
}

// setupFirmwareImage builds a machine with a raw firmware image loaded
// (no OS), booted through the monitor when virtualize is set, ready to run.
// Construction is separated from execution so host-throughput measurements
// can time the run loop alone.
func setupFirmwareImage(cfg *hart.Config, img []byte, virtualize bool) (*hart.Machine, error) {
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		return nil, err
	}
	if err := m.LoadImage(core.FirmwareBase, img); err != nil {
		return nil, err
	}
	if virtualize {
		mon, err := core.Attach(m, core.Options{FirmwareEntry: core.FirmwareBase})
		if err != nil {
			return nil, err
		}
		mon.Boot()
	} else {
		m.Reset(core.FirmwareBase)
	}
	return m, nil
}

// runFirmwareImage boots a raw firmware image (no OS) and returns hart-0
// cycles at halt.
func runFirmwareImage(cfg *hart.Config, img []byte, virtualize bool) (uint64, error) {
	m, err := setupFirmwareImage(cfg, img, virtualize)
	if err != nil {
		return 0, err
	}
	m.Run(500_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		return 0, fmt.Errorf("micro firmware run failed: %v %q", ok, reason)
	}
	return m.Harts[0].Cycles, nil
}

// setupKernelImage builds a machine with gosbi + a kernel image loaded in
// the given mode, ready to run.
func setupKernelImage(newCfg func() *hart.Config, kern []byte, mode Mode) (*hart.Machine, error) {
	cfg := newCfg()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		return nil, err
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	if err := m.LoadImage(core.FirmwareBase, fw.Bytes); err != nil {
		return nil, err
	}
	if err := m.LoadImage(core.OSBase, kern); err != nil {
		return nil, err
	}
	if mode != Native {
		mon, err := core.Attach(m, core.Options{
			Offload: mode == Miralis, FirmwareEntry: core.FirmwareBase,
		})
		if err != nil {
			return nil, err
		}
		mon.Boot()
	} else {
		m.Reset(core.FirmwareBase)
	}
	return m, nil
}

// runKernelImage boots gosbi + a kernel image in the given mode and
// returns hart-0 cycles at halt.
func runKernelImage(newCfg func() *hart.Config, kern []byte, mode Mode) (uint64, error) {
	m, err := setupKernelImage(newCfg, kern, mode)
	if err != nil {
		return 0, err
	}
	m.Run(2_000_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		return 0, fmt.Errorf("micro kernel run failed: %v %q", ok, reason)
	}
	return m.Harts[0].Cycles, nil
}

// perOp returns the per-operation cycle cost by two-point differencing.
func perOp(c1, c2 uint64, n1, n2 int) float64 {
	return float64(c2-c1) / float64(n2-n1)
}

// Table4Result holds the Miralis operation costs (paper Table 4).
type Table4Result struct {
	Platform          string
	EmulationCycles   float64 // one emulated "csrw mscratch, x0"
	WorldSwitchCycles float64 // full OS->VFM->firmware->VFM->OS round trip
}

// Table4 measures instruction-emulation and world-switch costs.
func Table4(newCfg func() *hart.Config) (*Table4Result, error) {
	const n1, n2 = 200, 1800
	cfg := newCfg()
	c1, err := runFirmwareImage(newCfg(), buildCsrwFirmware(core.FirmwareBase, n1), true)
	if err != nil {
		return nil, err
	}
	c2, err := runFirmwareImage(newCfg(), buildCsrwFirmware(core.FirmwareBase, n2), true)
	if err != nil {
		return nil, err
	}
	emu := perOp(c1, c2, n1, n2)

	k1, err := runKernelImage(newCfg, buildEcallKernel(core.OSBase, n1), Miralis)
	if err != nil {
		return nil, err
	}
	k2, err := runKernelImage(newCfg, buildEcallKernel(core.OSBase, n2), Miralis)
	if err != nil {
		return nil, err
	}
	ws := perOp(k1, k2, n1, n2)
	return &Table4Result{Platform: cfg.Name, EmulationCycles: emu, WorldSwitchCycles: ws}, nil
}

// Table5Result holds the time-read and IPI costs in nanoseconds for the
// three system configurations (paper Table 5).
type Table5Result struct {
	Platform string
	ReadTime map[Mode]float64 // ns per op
	IPI      map[Mode]float64 // ns per op
}

// Table5 measures the cost of the two hottest offloaded operations.
func Table5(newCfg func() *hart.Config) (*Table5Result, error) {
	const n1, n2 = 500, 4500
	cfg := newCfg()
	res := &Table5Result{
		Platform: cfg.Name,
		ReadTime: make(map[Mode]float64),
		IPI:      make(map[Mode]float64),
	}
	for _, mode := range Modes {
		c1, err := runKernelImage(newCfg, buildTimeReadKernel(core.OSBase, n1), mode)
		if err != nil {
			return nil, err
		}
		c2, err := runKernelImage(newCfg, buildTimeReadKernel(core.OSBase, n2), mode)
		if err != nil {
			return nil, err
		}
		res.ReadTime[mode] = NsPerOp(cfg, perOp(c1, c2, n1, n2))

		i1, err := runKernelImage(newCfg, buildIPIKernel(core.OSBase, n1/5), mode)
		if err != nil {
			return nil, err
		}
		i2, err := runKernelImage(newCfg, buildIPIKernel(core.OSBase, n2/5), mode)
		if err != nil {
			return nil, err
		}
		res.IPI[mode] = NsPerOp(cfg, perOp(i1, i2, n1/5, n2/5))
	}
	return res, nil
}
