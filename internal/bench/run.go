package bench

import (
	"fmt"
	"sort"
	"time"

	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
	"govfm/internal/policy/sandbox"
	"govfm/internal/trace"
)

// Mode selects the system configuration under test (the columns of the
// paper's figures).
type Mode int

const (
	Native Mode = iota // firmware in physical M-mode, no monitor
	Miralis
	MiralisNoOffload
)

func (m Mode) String() string {
	switch m {
	case Native:
		return "native"
	case Miralis:
		return "miralis"
	case MiralisNoOffload:
		return "miralis-no-offload"
	}
	return "?"
}

// Modes lists the three standard configurations.
var Modes = []Mode{Native, Miralis, MiralisNoOffload}

// Metrics is what one run yields.
type Metrics struct {
	Workload string
	Platform string
	Mode     Mode

	Cycles   uint64  // hart-0 cycles to completion
	Instret  uint64  // retired guest instructions
	SimTime  float64 // seconds of simulated time (cycles / frequency)
	HostNs   int64   // host wall time of the run loop (excludes setup)
	MIPS     float64 // host throughput: retired instructions / host µs
	TrapsToM uint64  // traps that entered M-mode
	TrapRate float64 // traps to M per simulated second

	WorldSwitches   uint64
	WorldSwitchRate float64 // per simulated second
	FastPathHits    uint64
	Emulations      uint64
	TopCauseShare   float64 // offloadable-cause share of traps (Fig. 3)
	CauseCounts     map[string]uint64
	LatencySamples  []uint64 // per-iteration cycles (when sampled)
	Collector       *trace.Collector
	Monitor         *core.Monitor
	Machine         *hart.Machine
}

// Runner builds machines for one platform profile.
type Runner struct {
	NewConfig func() *hart.Config
	// Sandbox attaches the firmware sandbox policy on monitored runs
	// (the paper's default evaluation configuration).
	Sandbox bool
	// MaxSteps bounds a run (0 = a generous default).
	MaxSteps uint64
}

// Run executes the workload in the given mode and returns its metrics.
func (r *Runner) Run(w *WorkloadSpec, mode Mode) (*Metrics, error) {
	cfg := r.NewConfig()
	cfg.Harts = 1
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		return nil, err
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: 1, FirmwareSize: core.FirmwareSize,
	})
	if err := m.LoadImage(core.FirmwareBase, fw.Bytes); err != nil {
		return nil, err
	}
	if err := m.LoadImage(core.OSBase, w.BuildKernel(core.OSBase)); err != nil {
		return nil, err
	}

	col := trace.NewCollector(0, m.Clint.Time)
	col.Attach(m.Harts[0])

	var mon *core.Monitor
	if mode != Native {
		opts := core.Options{
			Offload:       mode == Miralis,
			FirmwareEntry: core.FirmwareBase,
		}
		if r.Sandbox {
			opts.Policy = sandbox.New(sandbox.Options{})
		}
		mon, err = core.Attach(m, opts)
		if err != nil {
			return nil, err
		}
		mon.Boot()
	} else {
		m.Reset(core.FirmwareBase)
	}

	maxSteps := r.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	hostStart := time.Now()
	m.Run(maxSteps)
	hostNs := time.Since(hostStart).Nanoseconds()
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		return nil, fmt.Errorf("bench %s/%s: run did not complete cleanly: %v %q (pc=%#x)",
			w.Name, mode, ok, reason, m.Harts[0].PC)
	}

	h := m.Harts[0]
	met := &Metrics{
		Workload:    w.Name,
		Platform:    cfg.Name,
		Mode:        mode,
		Cycles:      h.Cycles,
		Instret:     h.Instret,
		SimTime:     float64(h.Cycles) / (float64(cfg.FreqMHz) * 1e6),
		HostNs:      hostNs,
		TrapsToM:    col.TrapsToM,
		Collector:   col,
		Monitor:     mon,
		Machine:     m,
		CauseCounts: col.Total,
	}
	if met.SimTime > 0 {
		met.TrapRate = float64(col.TrapsToM) / met.SimTime
	}
	if hostNs > 0 {
		met.MIPS = float64(h.Instret) * 1e3 / float64(hostNs)
	}
	met.TopCauseShare = col.TopShare()
	if mon != nil {
		st := mon.TotalStats()
		met.WorldSwitches = st.WorldSwitches
		met.FastPathHits = st.FastPathHits
		met.Emulations = st.Emulations
		if met.SimTime > 0 {
			met.WorldSwitchRate = float64(st.WorldSwitches) / met.SimTime
		}
	}
	if w.Samples > 0 {
		met.LatencySamples = readSamples(m, w.Samples)
	}
	return met, nil
}

func readSamples(m *hart.Machine, n int) []uint64 {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		v, ok := m.Bus.Load(sampleBufAddr+uint64(8*i), 8)
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of the samples.
func Percentile(samples []uint64, p float64) uint64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]uint64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// RelativeScore returns the workload's performance relative to a baseline:
// baselineCycles / cycles (higher is better, 1.0 = parity), the metric of
// Figs. 10, 13, and 14.
func RelativeScore(baseline, measured *Metrics) float64 {
	if measured.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(measured.Cycles)
}

// NsPerOp converts a cycles-per-op measurement to nanoseconds on the
// platform.
func NsPerOp(cfg *hart.Config, cycles float64) float64 {
	return cycles / float64(cfg.FreqMHz) * 1000
}

// RunAll executes the workload in all three modes.
func (r *Runner) RunAll(w *WorkloadSpec) (map[Mode]*Metrics, error) {
	out := make(map[Mode]*Metrics, len(Modes))
	for _, mode := range Modes {
		met, err := r.Run(w, mode)
		if err != nil {
			return nil, err
		}
		out[mode] = met
	}
	return out, nil
}

// BootWorkload returns the phased boot sequence used by the boot-time
// experiment (§8.3.2) and Fig. 3: bootloader, early init, and a long idle
// tail of timer ticks.
func BootWorkload(harts int) []byte {
	_ = harts
	return kernel.BuildBootTrace(core.OSBase, 200)
}
