package bench

import (
	"fmt"
	"math"
	"time"

	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/kernel"
	"govfm/internal/obs"
)

// Simulator host-throughput measurement: how fast the simulator itself
// runs on the host, across three execution tiers — the plain interpreter,
// the host acceleration caches (predecode, software TLB, flattened PMP,
// PLIC memoization), and the superblock binary-translation tier on top.
// Every tier must be invisible to the architecture, so each workload's
// simulated cycle and instret counts are asserted bit-identical across
// all three settings — the speedup is pure host-side gain, never a
// cycle-model change.

// SimHostResult is one workload's tier comparison on one platform. The
// "on" fields are the full stack (fast path + superblocks) so the
// top-line speedup keeps its meaning across baseline recordings; the
// "fast" fields isolate the cache tier without translation.
type SimHostResult struct {
	Platform string `json:"platform"`
	Workload string `json:"workload"`

	// Architectural outcome — identical for all tiers (asserted).
	Instret uint64 `json:"instret"`
	Cycles  uint64 `json:"cycles"`

	// Host wall time (best of reps) and derived throughput.
	HostNsOff   int64   `json:"host_ns_off"`
	HostNsFast  int64   `json:"host_ns_fast"` // caches on, superblocks off
	HostNsOn    int64   `json:"host_ns_on"`   // full stack
	MIPSOff     float64 `json:"mips_off"`
	MIPSFast    float64 `json:"mips_fast"`
	MIPSOn      float64 `json:"mips_on"`
	SpeedupFast float64 `json:"speedup_fast"` // caches alone vs. interpreter
	Speedup     float64 `json:"speedup"`      // full stack vs. interpreter

	// Host-tier effectiveness in the full-stack run, from the hart's
	// perf counters (absent in pre-observability baselines).
	TLBHitPct    uint64 `json:"tlb_hit_pct"`
	DecodeHitPct uint64 `json:"decode_hit_pct"`
	// Share of retired instructions executed inside superblocks.
	SBRetiredPct uint64 `json:"sb_retired_pct"`
}

// simHostCase is one workload: a setup function returning a machine that
// is fully built, loaded, and booted but not yet run, so the timed section
// is the run loop alone (machine construction zeroes DRAM, which would
// otherwise dominate short runs).
type simHostCase struct {
	name  string
	setup func(newCfg func() *hart.Config) (*hart.Machine, error)
}

func simHostCases() []simHostCase {
	return []simHostCase{
		{"emulation-loop", func(newCfg func() *hart.Config) (*hart.Machine, error) {
			// Table 4's emulation probe scaled up: every csrw traps to the
			// monitor, stressing the world-switch + decode path.
			return setupFirmwareImage(newCfg(), buildCsrwFirmware(core.FirmwareBase, 20_000), true)
		}},
		{"worldswitch-loop", func(newCfg func() *hart.Config) (*hart.Machine, error) {
			// Table 4's full OS->VFM->firmware->VFM->OS round trip.
			return setupKernelImage(newCfg, buildEcallKernel(core.OSBase, 8_000), Miralis)
		}},
		{"firmware-boot", func(newCfg func() *hart.Config) (*hart.Machine, error) {
			// The phased boot sequence with an idle timer-tick tail.
			return setupKernelImage(newCfg, kernel.BuildBootTrace(core.OSBase, 200), Miralis)
		}},
		{"compute-cmp-core", func(newCfg func() *hart.Config) (*hart.Machine, error) {
			// A CPU-bound CoreMark-Pro-style kernel: the straight-line
			// fetch/decode/execute hot loop with few traps.
			w := &WorkloadSpec{
				Name: "cmp-core", Iterations: 300, ComputeN: 1800, MemN: 10,
				WorkingSet: 4 << 10, TimeReadEvery: 9, TimerSetEvery: 97,
			}
			return setupKernelImage(newCfg, w.BuildKernel(core.OSBase), Miralis)
		}},
	}
}

// simHostReps is how many times each (workload, setting) pair runs; the
// fastest host time wins, damping scheduler noise on a shared host.
const simHostReps = 2

// measureSimHost runs one freshly set-up machine with the given tier
// settings and reports the architectural outcome plus host wall time.
func measureSimHost(c simHostCase, newCfg func() *hart.Config, fast, sb bool) (cycles, instret uint64, ns int64, perf hart.PerfCounters, err error) {
	for rep := 0; rep < simHostReps; rep++ {
		m, err := c.setup(newCfg)
		if err != nil {
			return 0, 0, 0, perf, err
		}
		m.SetFastPath(fast)
		m.SetSuperblock(sb)
		start := time.Now()
		m.Run(2_000_000_000)
		elapsed := time.Since(start).Nanoseconds()
		if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
			return 0, 0, 0, perf, fmt.Errorf("simhost %s: run did not complete: %v %q", c.name, ok, reason)
		}
		h := m.Harts[0]
		if rep == 0 {
			cycles, instret, ns, perf = h.Cycles, h.Instret, elapsed, h.Perf
			continue
		}
		if h.Cycles != cycles || h.Instret != instret {
			return 0, 0, 0, perf, fmt.Errorf("simhost %s: nondeterministic run (cycles %d vs %d)",
				c.name, h.Cycles, cycles)
		}
		if elapsed < ns {
			ns = elapsed
		}
	}
	return cycles, instret, ns, perf, nil
}

// SimHost measures host throughput for every simhost workload on one
// platform across the three execution tiers — interpreter, fast path,
// full stack — and asserts cycle-count invariance between all of them.
// superblock gates the translation tier in the full-stack measurement
// (the -superblock benchall flag; with it off, "on" degenerates to a
// second fast-path run).
func SimHost(newCfg func() *hart.Config, superblock bool) ([]*SimHostResult, error) {
	cfg := newCfg()
	var out []*SimHostResult
	for _, c := range simHostCases() {
		cycOff, insOff, nsOff, _, err := measureSimHost(c, newCfg, false, false)
		if err != nil {
			return nil, err
		}
		cycFast, insFast, nsFast, _, err := measureSimHost(c, newCfg, true, false)
		if err != nil {
			return nil, err
		}
		cycOn, insOn, nsOn, perf, err := measureSimHost(c, newCfg, true, superblock)
		if err != nil {
			return nil, err
		}
		if cycOff != cycFast || insOff != insFast {
			return nil, fmt.Errorf(
				"simhost %s/%s: host caches changed the cycle model: off=%d/%d fast=%d/%d",
				cfg.Name, c.name, cycOff, insOff, cycFast, insFast)
		}
		if cycOff != cycOn || insOff != insOn {
			return nil, fmt.Errorf(
				"simhost %s/%s: superblock tier changed the cycle model: off=%d/%d on=%d/%d",
				cfg.Name, c.name, cycOff, insOff, cycOn, insOn)
		}
		r := &SimHostResult{
			Platform: cfg.Name, Workload: c.name,
			Instret: insOn, Cycles: cycOn,
			HostNsOff: nsOff, HostNsFast: nsFast, HostNsOn: nsOn,
			TLBHitPct:    obs.HitRatePct(perf.TLBHits, perf.TLBMisses),
			DecodeHitPct: obs.HitRatePct(perf.DecodeHits, perf.DecodeMisses),
		}
		if insOn >= perf.SBRetired {
			r.SBRetiredPct = obs.HitRatePct(perf.SBRetired, insOn-perf.SBRetired)
		}
		if nsOff > 0 {
			r.MIPSOff = float64(insOff) * 1e3 / float64(nsOff)
		}
		if nsFast > 0 {
			r.MIPSFast = float64(insFast) * 1e3 / float64(nsFast)
			r.SpeedupFast = float64(nsOff) / float64(nsFast)
		}
		if nsOn > 0 {
			r.MIPSOn = float64(insOn) * 1e3 / float64(nsOn)
			r.Speedup = float64(nsOff) / float64(nsOn)
		}
		out = append(out, r)
	}
	return out, nil
}

// GeomeanSpeedup returns the geometric-mean host speedup over results.
func GeomeanSpeedup(results []*SimHostResult) float64 {
	if len(results) == 0 {
		return 0
	}
	prod := 1.0
	for _, r := range results {
		prod *= r.Speedup
	}
	return math.Pow(prod, 1/float64(len(results)))
}
