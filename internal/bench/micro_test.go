package bench

import (
	"testing"

	"govfm/internal/hart"
)

func TestTable4(t *testing.T) {
	for name, mk := range map[string]func() *hart.Config{
		"visionfive2": hart.VisionFive2, "p550": hart.PremierP550,
	} {
		r, err := Table4(mk)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: emulation=%.0f cycles, world switch=%.0f cycles",
			name, r.EmulationCycles, r.WorldSwitchCycles)
		if r.EmulationCycles < 100 || r.EmulationCycles > 2000 {
			t.Errorf("%s: emulation cost %.0f out of plausible range", name, r.EmulationCycles)
		}
		if r.WorldSwitchCycles < r.EmulationCycles {
			t.Errorf("%s: world switch must cost more than one emulation", name)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	vf2, err := Table4(hart.VisionFive2)
	if err != nil {
		t.Fatal(err)
	}
	p550, err := Table4(hart.PremierP550)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 4's inversion: the P550 emulates cheaper but world-
	// switches dearer than the VisionFive 2.
	if p550.EmulationCycles >= vf2.EmulationCycles {
		t.Errorf("emulation: P550 (%.0f) must be cheaper than VF2 (%.0f)",
			p550.EmulationCycles, vf2.EmulationCycles)
	}
	if p550.WorldSwitchCycles <= vf2.WorldSwitchCycles {
		t.Errorf("world switch: P550 (%.0f) must be dearer than VF2 (%.0f)",
			p550.WorldSwitchCycles, vf2.WorldSwitchCycles)
	}
}

func TestTable5(t *testing.T) {
	r, err := Table5(hart.VisionFive2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("read time: native=%.0fns miralis=%.0fns no-offload=%.0fns",
		r.ReadTime[Native], r.ReadTime[Miralis], r.ReadTime[MiralisNoOffload])
	t.Logf("ipi:       native=%.0fns miralis=%.0fns no-offload=%.0fns",
		r.IPI[Native], r.IPI[Miralis], r.IPI[MiralisNoOffload])
	// Paper Table 5's shape: Miralis' fast path is at least as fast as the
	// vendor firmware; disabling offload costs an order of magnitude.
	if r.ReadTime[Miralis] > r.ReadTime[Native] {
		t.Errorf("fast-path time read (%.0f) must beat native (%.0f)",
			r.ReadTime[Miralis], r.ReadTime[Native])
	}
	if r.ReadTime[MiralisNoOffload] < 5*r.ReadTime[Miralis] {
		t.Errorf("no-offload time read must be dramatically slower: %.0f vs %.0f",
			r.ReadTime[MiralisNoOffload], r.ReadTime[Miralis])
	}
	if r.IPI[MiralisNoOffload] < 2*r.IPI[Miralis] {
		t.Errorf("no-offload IPI must be much slower: %.0f vs %.0f",
			r.IPI[MiralisNoOffload], r.IPI[Miralis])
	}
}
