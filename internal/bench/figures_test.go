package bench

import (
	"testing"

	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
)

// The figure tests assert the *shape* of each paper result: who wins, by
// roughly what factor, and where the crossovers are — not absolute numbers
// (DESIGN.md documents the calibration).

func TestFig3BootTrapDistribution(t *testing.T) {
	res, err := Fig3(hart.VisionFive2, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	// Paper: five offloadable causes account for 99.98% of boot traps.
	if res.TopShare < 0.95 {
		t.Errorf("top-cause share %.4f, want > 0.95", res.TopShare)
	}
	if res.BootTraps < 300 {
		t.Errorf("boot produced only %d traps", res.BootTraps)
	}
	if len(res.Collector.Windows) < 2 {
		t.Errorf("expected multiple windows, got %d", len(res.Collector.Windows))
	}
	// Paper: 5500 traps/s during boot drop to 1.17 world switches per
	// second with offload — several orders of magnitude. Require at least
	// a factor of 50 here.
	if res.WorldSwitchRate > res.NativeTrapRate/50 {
		t.Errorf("offloaded world-switch rate %.1f/s too close to native trap rate %.1f/s",
			res.WorldSwitchRate, res.NativeTrapRate)
	}
}

func TestFig10CoreMarkProShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	res, err := Fig10(hart.VisionFive2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	for _, row := range res.Rows {
		// Paper: Miralis within noise of native; no-offload ~1.9% overhead
		// on CPU workloads. Allow generous bands.
		if row.Relative[Miralis] < 0.97 {
			t.Errorf("%s: miralis relative %.3f < 0.97", row.Workload, row.Relative[Miralis])
		}
		if row.Relative[MiralisNoOffload] < 0.80 || row.Relative[MiralisNoOffload] > 1.01 {
			t.Errorf("%s: no-offload relative %.3f outside (0.80, 1.01)",
				row.Workload, row.Relative[MiralisNoOffload])
		}
	}
}

func TestFig11IOzoneShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	res, err := Fig11(hart.VisionFive2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	for _, op := range []string{"read", "write"} {
		m := res.Throughput[op]
		if m[Miralis] < 0.97*m[Native] {
			t.Errorf("%s: miralis throughput %.1f below native %.1f", op, m[Miralis], m[Native])
		}
		// Paper: ~10.6% no-offload overhead on IOzone.
		if m[MiralisNoOffload] > 0.99*m[Native] {
			t.Errorf("%s: no-offload should show visible overhead (%.1f vs %.1f)",
				op, m[MiralisNoOffload], m[Native])
		}
		if m[MiralisNoOffload] < 0.60*m[Native] {
			t.Errorf("%s: no-offload overhead implausibly large (%.1f vs %.1f)",
				op, m[MiralisNoOffload], m[Native])
		}
	}
}

func TestFig12MemcachedLatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	res, err := Fig12(hart.VisionFive2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	// Paper: Miralis at or slightly below native up to the 95th
	// percentile; no-offload roughly doubles the latency.
	for _, p := range []int{25, 50, 75, 90} {
		nat := res.PercentilesNs[Native][p]
		mir := res.PercentilesNs[Miralis][p]
		noo := res.PercentilesNs[MiralisNoOffload][p]
		if mir > 1.03*nat {
			t.Errorf("p%d: miralis %.0fns exceeds native %.0fns by >3%%", p, mir, nat)
		}
		if noo < 1.3*nat {
			t.Errorf("p%d: no-offload %.0fns should be much slower than native %.0fns",
				p, noo, nat)
		}
	}
}

func TestFig13ApplicationsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	for name, mk := range map[string]func() *hart.Config{
		"visionfive2": hart.VisionFive2, "p550": hart.PremierP550,
	} {
		res, err := Fig13(mk)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("\n%s", res.Format())
		byName := map[string]FigRow{}
		for _, r := range res.Rows {
			byName[r.Workload] = r
			if r.Relative[Miralis] < 0.97 {
				t.Errorf("%s/%s: miralis relative %.3f", name, r.Workload, r.Relative[Miralis])
			}
		}
		// The network-heavy workloads must suffer most without offload
		// (paper: up to 259% overhead on Redis, mild on GCC).
		if byName["redis"].Relative[MiralisNoOffload] >= byName["gcc"].Relative[MiralisNoOffload] {
			t.Errorf("%s: redis (%.3f) must lose more than gcc (%.3f) without offload",
				name, byName["redis"].Relative[MiralisNoOffload],
				byName["gcc"].Relative[MiralisNoOffload])
		}
		if byName["redis"].Relative[MiralisNoOffload] > 0.75 {
			t.Errorf("%s: redis no-offload relative %.3f too good — trap rate too low",
				name, byName["redis"].Relative[MiralisNoOffload])
		}
		// Trap-rate ordering mirrors the paper: memcached > redis > gcc.
		if byName["memcached"].TrapRate <= byName["redis"].TrapRate {
			t.Errorf("%s: memcached trap rate must exceed redis", name)
		}
		if byName["redis"].TrapRate <= byName["gcc"].TrapRate {
			t.Errorf("%s: redis trap rate must exceed gcc", name)
		}
	}
}

func TestFig14KeystoneRV8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	res, err := Fig14(hart.VisionFive2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	// Paper: ~1% average enclave overhead.
	if res.Average < 0.90 || res.Average > 1.02 {
		t.Errorf("average enclave relative %.3f outside (0.90, 1.02)", res.Average)
	}
	for _, r := range res.Rows {
		if r.Relative < 0.85 || r.Relative > 1.05 {
			t.Errorf("%s: enclave relative %.3f outside (0.85, 1.05)", r.Benchmark, r.Relative)
		}
	}
}

func TestBootTimeShape(t *testing.T) {
	res, err := BootTime(hart.VisionFive2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	nat, mir, noo := res.Seconds[Native], res.Seconds[Miralis], res.Seconds[MiralisNoOffload]
	// Paper: 48.0s vs 47.5s (≈1%) vs 61.3s (≈29%).
	if mir > 1.05*nat {
		t.Errorf("miralis boot %.4fs exceeds native %.4fs by >5%%", mir, nat)
	}
	if noo < 1.10*nat {
		t.Errorf("no-offload boot %.4fs should be well above native %.4fs", noo, nat)
	}
}

func TestTrapRateCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	// The synthetic applications must land near the paper's measured trap
	// rates (the quantity that drives every overhead result).
	r := &Runner{NewConfig: hart.VisionFive2}
	targets := map[string][2]float64{ // name -> [min, max] traps/s
		"redis":     {100_000, 600_000},
		"memcached": {150_000, 900_000},
		"gcc":       {1_000, 60_000},
	}
	for _, w := range Applications() {
		want, ok := targets[w.Name]
		if !ok {
			continue
		}
		met, err := r.Run(w, Native)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %.0f traps/s (paper: redis 272k, memcached 388k)", w.Name, met.TrapRate)
		if met.TrapRate < want[0] || met.TrapRate > want[1] {
			t.Errorf("%s: trap rate %.0f outside [%.0f, %.0f]",
				w.Name, met.TrapRate, want[0], want[1])
		}
	}
}

func TestRVA23AblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	res, err := RVA23Ablation()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	// Without offload, the VisionFive 2 suffers badly while the
	// RVA23-class CPU runs at parity — the paper's §3.4 prediction.
	if res.NoOffloadRelative["visionfive2"] > 0.85 {
		t.Errorf("VF2 no-offload relative %.3f too good", res.NoOffloadRelative["visionfive2"])
	}
	if res.NoOffloadRelative["rva23"] < 0.99 {
		t.Errorf("RVA23 no-offload relative %.3f should be at parity", res.NoOffloadRelative["rva23"])
	}
	// The hardware features must eliminate nearly all world switches
	// (paper: time CSR + Sstc remove 96.5% of them).
	vf2, rva := res.NoOffloadSwitches["visionfive2"], res.NoOffloadSwitches["rva23"]
	if rva*20 > vf2 {
		t.Errorf("RVA23 world switches %d not <5%% of VF2's %d", rva, vf2)
	}
}

func TestOffloadAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	res, err := OffloadAblation(hart.VisionFive2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	// Each additional fast path must help (weakly), and the time-read
	// path alone must recover most of the gap — it is the dominant cause.
	prev := -1.0
	for _, name := range res.Order {
		if res.Relative[name] < prev-0.01 {
			t.Errorf("enabling more fast paths must not hurt: %s %.3f after %.3f",
				name, res.Relative[name], prev)
		}
		prev = res.Relative[name]
	}
	none, tr, all := res.Relative["none"], res.Relative["time-read"], res.Relative["all"]
	if (tr - none) < 0.25*(all-none) {
		t.Errorf("time-read offload must recover a large share of the gap: none=%.3f tr=%.3f all=%.3f",
			none, tr, all)
	}
	if all < 0.97 {
		t.Errorf("full offload must reach near-parity, got %.3f", all)
	}
}

// TestMultiHartWorkload: the monitor virtualizes all four cores at once —
// each hart gets its own context, virtual CSR file, and PMP multiplexing,
// and cross-hart IPIs flow through the virtual CLINT.
func TestMultiHartWorkload(t *testing.T) {
	cfg := hart.VisionFive2() // 4 harts
	m, err := hart.NewMachine(cfg, core.DramSize)
	if err != nil {
		t.Fatal(err)
	}
	fw := firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
		OSEntry: core.OSBase, Harts: cfg.Harts, FirmwareSize: core.FirmwareSize,
	})
	kern := kernel.BuildBoot(core.OSBase, kernel.BootOptions{
		Harts: cfg.Harts, TimeReads: 50, TimerSets: 2, Misaligned: 10,
	})
	_ = m.LoadImage(core.FirmwareBase, fw.Bytes)
	_ = m.LoadImage(core.OSBase, kern)
	mon, err := core.Attach(m, core.Options{Offload: true, FirmwareEntry: core.FirmwareBase})
	if err != nil {
		t.Fatal(err)
	}
	mon.Boot()
	m.Run(50_000_000)
	if ok, reason := m.Halted(); !ok || reason != "guest-exit-pass" {
		t.Fatalf("%v %q", ok, reason)
	}
	// Hart 1 was started through HSM and took the IPI round trip.
	if mon.Ctx[1].Stats.Emulations == 0 {
		t.Error("hart 1 must have been virtualized too")
	}
}
