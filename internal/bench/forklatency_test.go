package bench

import (
	"testing"

	"govfm/internal/hart"
)

func TestForkLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("fork latency benchmark in -short mode")
	}
	res, err := ForkLatency(hart.VisionFive2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases != 20 || res.ImagePages == 0 || res.CaseSteps == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	// The acceptance bar is 5x on the 200-case campaign (measures ~15x
	// here); the smoke test asserts a loose floor to stay robust on
	// loaded CI hosts.
	if res.Speedup < 3 {
		t.Fatalf("fork-spawned campaign not faster than cold boot: %+v", res)
	}
	t.Logf("fork=%.0f cases/s cold=%.0f cases/s speedup=%.1fx spawn=%dns image=%d pages",
		res.ForkCasesPerSec, res.ColdCasesPerSec, res.Speedup, res.SpawnNsPerCase, res.ImagePages)
}
