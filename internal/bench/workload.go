// Package bench is the evaluation harness: workload generators whose trap
// mix and rate reproduce the paper's application profiles, a scenario
// runner that executes each workload Native / under Miralis / under
// Miralis without fast-path offloading, and per-table/per-figure printers
// that regenerate every row and series of the paper's evaluation section.
package bench

import (
	"govfm/internal/asm"
	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/rv"
)

// WorkloadSpec describes a synthetic workload: per-iteration compute and
// memory work plus the firmware-trap mix the real application induces.
// The mix fractions are expressed as "one op every N iterations" (0 = never).
type WorkloadSpec struct {
	Name string

	// Iterations of the outer loop ("requests", "records", "blocks").
	Iterations int

	// ComputeN is the inner arithmetic loop count per iteration.
	ComputeN int
	// MemN is the inner memory-op loop count per iteration (8-byte
	// loads+stores over a working set).
	MemN int
	// WorkingSet is the buffer size in bytes for the memory loop.
	WorkingSet uint64

	// Trap mix: one op every N iterations (0 = never).
	TimeReadEvery   int
	TimerSetEvery   int // sbi set_timer + pending STI consumed by handler
	MisalignedEvery int
	IPIEvery        int // self-IPI: SSIP round trip through the handler
	RfenceEvery     int
	ConsoleEvery    int // debug-console byte (never offloaded)

	// Latency sampling: when > 0, per-iteration cycle deltas are stored
	// to the sample buffer (Fig. 12's latency distribution).
	Samples int

	// UseSstc programs timer deadlines through the stimecmp CSR instead
	// of SBI set_timer — the RVA23-generation kernel behaviour that
	// removes the dominant trap causes (§3.4).
	UseSstc bool
}

// Workload memory layout inside the OS region.
const (
	workBufAddr   = core.OSBase + 0x20_0000 // working set
	sampleBufAddr = core.OSBase + 0x40_0000 // latency samples (8 B each)
	doneFlagAddr  = core.OSBase + 0x50_0000
)

// BuildKernel assembles the workload kernel at base.
func (w *WorkloadSpec) BuildKernel(base uint64) []byte {
	a := asm.New(base)
	ws := w.WorkingSet
	if ws == 0 {
		ws = 64 << 10
	}

	a.Label("entry")
	a.La(asm.T0, "strap")
	a.Csrw(rv.CSRStvec, asm.T0)
	// Enable the supervisor timer and software interrupts we may receive.
	a.Li(asm.T0, 1<<rv.IntSTimer|1<<rv.IntSSoft)
	a.Csrrs(asm.X0, rv.CSRSie, asm.T0)
	a.Csrrsi(asm.X0, rv.CSRSstatus, 1<<rv.MstatusSIE)

	a.Li(asm.S0, uint64(w.Iterations)) // outer counter (counts down)
	a.Li(asm.S1, 0)                    // iteration index (counts up)
	a.Li(asm.S2, workBufAddr)
	a.Li(asm.S3, sampleBufAddr)

	a.Label("outer")
	if w.Samples > 0 {
		a.Csrr(asm.S6, rv.CSRCycle)
	}

	// Compute kernel: dependent add/xor/mul chain.
	if w.ComputeN > 0 {
		a.Li(asm.T0, uint64(w.ComputeN))
		a.Li(asm.T1, 0x9E3779B9)
		a.Label("comp")
		a.Add(asm.T2, asm.T2, asm.T1)
		a.Xor(asm.T1, asm.T1, asm.T2)
		a.Slli(asm.T3, asm.T2, 1)
		a.Add(asm.T2, asm.T2, asm.T3)
		a.Addi(asm.T0, asm.T0, -1)
		a.Bnez(asm.T0, "comp")
	}

	// Memory kernel: strided load+store over the working set.
	if w.MemN > 0 {
		a.Li(asm.T0, uint64(w.MemN))
		a.Li(asm.T4, 0) // offset
		a.Li(asm.T5, ws-8)
		a.Label("memloop")
		a.Add(asm.T3, asm.S2, asm.T4)
		a.Ld(asm.T2, asm.T3, 0)
		a.Addi(asm.T2, asm.T2, 1)
		a.Sd(asm.T2, asm.T3, 0)
		a.Addi(asm.T4, asm.T4, 64) // cache-line stride
		a.Bltu(asm.T4, asm.T5, "memok")
		a.Li(asm.T4, 0)
		a.Label("memok")
		a.Addi(asm.T0, asm.T0, -1)
		a.Bnez(asm.T0, "memloop")
	}

	// Trap mix, gated on the iteration index.
	emitEvery := func(every int, label string, body func()) {
		if every <= 0 {
			return
		}
		a.Li(asm.T0, uint64(every))
		a.Remu(asm.T1, asm.S1, asm.T0)
		a.BnezFar(asm.T1, label+"_skip")
		body()
		a.Label(label + "_skip")
	}
	emitEvery(w.TimeReadEvery, "tr", func() {
		a.Csrr(asm.T2, rv.CSRTime)
	})
	emitEvery(w.MisalignedEvery, "mis", func() {
		a.Addi(asm.T3, asm.S2, 1)
		a.Li(asm.T2, 0x1122334455667788)
		a.Sd(asm.T2, asm.T3, 0)
		a.Ld(asm.T2, asm.T3, 0)
	})
	emitEvery(w.TimerSetEvery, "tmr", func() {
		// Arm a short deadline; the handler consumes the interrupt and
		// quiesces the timer.
		if w.UseSstc {
			a.Csrr(asm.T2, rv.CSRTime)
			a.Addi(asm.T2, asm.T2, 5)
			a.Csrw(rv.CSRStimecmp, asm.T2)
		} else {
			a.Csrr(asm.A0, rv.CSRTime)
			a.Addi(asm.A0, asm.A0, 5)
			a.Li(asm.A7, rv.SBIExtTimer)
			a.Li(asm.A6, rv.SBITimerSetTimer)
			a.Ecall()
		}
	})
	emitEvery(w.IPIEvery, "ipi", func() {
		a.Li(asm.A0, 1) // self (hart 0)
		a.Li(asm.A1, 0)
		a.Li(asm.A7, rv.SBIExtIPI)
		a.Li(asm.A6, rv.SBIIPISendIPI)
		a.Ecall()
	})
	emitEvery(w.RfenceEvery, "rf", func() {
		a.Li(asm.A0, ^uint64(0))
		a.Li(asm.A1, 0)
		a.Li(asm.A2, 0)
		a.Li(asm.A3, ^uint64(0))
		a.Li(asm.A7, rv.SBIExtRfence)
		a.Li(asm.A6, rv.SBIRfenceSfenceVMA)
		a.Ecall()
	})
	emitEvery(w.ConsoleEvery, "con", func() {
		a.Li(asm.A0, '.')
		a.Li(asm.A7, rv.SBIExtDebug)
		a.Li(asm.A6, rv.SBIDebugWriteByte)
		a.Ecall()
	})

	if w.Samples > 0 {
		// Record the iteration's latency in cycles for the first Samples
		// iterations.
		a.Li(asm.T0, uint64(w.Samples))
		a.BgeuFar(asm.S1, asm.T0, "nosample")
		a.Csrr(asm.T1, rv.CSRCycle)
		a.Sub(asm.T1, asm.T1, asm.S6)
		a.Slli(asm.T2, asm.S1, 3)
		a.Add(asm.T2, asm.S3, asm.T2)
		a.Sd(asm.T1, asm.T2, 0)
		a.Label("nosample")
	}

	a.Addi(asm.S1, asm.S1, 1)
	a.Addi(asm.S0, asm.S0, -1)
	a.BnezFar(asm.S0, "outer")

	// Mark completion and shut down.
	a.Li(asm.T0, doneFlagAddr)
	a.Li(asm.T1, 1)
	a.Sd(asm.T1, asm.T0, 0)
	a.Li(asm.A0, 0)
	a.Li(asm.A1, 0)
	a.Li(asm.A7, rv.SBIExtReset)
	a.Li(asm.A6, 0)
	a.Ecall()
	a.Label("hang")
	a.J("hang")

	// Supervisor handler: quiesce timers, clear soft interrupts.
	a.Label("strap")
	a.Csrr(asm.T6, rv.CSRScause)
	a.Slli(asm.T6, asm.T6, 1)
	a.Srli(asm.T6, asm.T6, 1)
	a.Li(asm.T5, rv.IntSTimer)
	a.Beq(asm.T6, asm.T5, "strap_tmr")
	a.Li(asm.T5, rv.IntSSoft)
	a.Beq(asm.T6, asm.T5, "strap_sw")
	// Unexpected trap: stop hard so bugs never masquerade as results.
	a.Li(asm.T6, hart.ExitBase)
	a.Li(asm.T5, hart.ExitFail)
	a.Sd(asm.T5, asm.T6, 0)
	a.Label("strap_tmr")
	if w.UseSstc {
		a.Li(asm.T5, ^uint64(0))
		a.Csrw(rv.CSRStimecmp, asm.T5)
	} else {
		a.Li(asm.A0, ^uint64(0))
		a.Li(asm.A7, rv.SBIExtTimer)
		a.Li(asm.A6, rv.SBITimerSetTimer)
		a.Ecall()
	}
	a.Sret()
	a.Label("strap_sw")
	a.Li(asm.T5, 1<<rv.IntSSoft)
	a.Csrrc(asm.X0, rv.CSRSip, asm.T5)
	a.Sret()

	return a.MustAssemble()
}
