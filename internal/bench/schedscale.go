package bench

import (
	"fmt"
	"time"

	"govfm/internal/asm"
	"govfm/internal/hart"
)

// Multi-hart scheduler scaling: host throughput of the sequential
// round-robin versus the quantum-parallel scheduler on the same closed
// compute workload, at growing hart counts. The workload is scheduler-
// equivalence-clean (per-hart disjoint windows, no MMIO, quiet interrupt
// lines), so every per-hart cycle counter is asserted bit-identical
// between the two runs — the speedup is pure host-side gain. On a
// single-CPU host the gain comes from amortization (interrupt-line
// latching, watchdog checks, and wall-clock division drop from per-step to
// per-quantum); with real cores it additionally gets true parallelism.

// SchedScaleResult is one hart-count row of the comparison.
type SchedScaleResult struct {
	Platform string `json:"platform"`
	Harts    int    `json:"harts"`

	// Per-hart instruction budget and (asserted identical) total cycles.
	Steps  uint64 `json:"steps"`
	Cycles uint64 `json:"cycles"`

	HostNsSeq int64   `json:"host_ns_seq"`
	HostNsPar int64   `json:"host_ns_par"`
	MIPSSeq   float64 `json:"mips_seq"`
	MIPSPar   float64 `json:"mips_par"`
	Speedup   float64 `json:"speedup"` // seq host time / par host time
}

// schedScaleSteps is the per-hart instruction budget per measurement.
const schedScaleSteps = 1_500_000

// schedScaleReps is how many times each (harts, scheduler) pair runs; the
// fastest host time wins, damping scheduler noise on a shared host.
const schedScaleReps = 5

// schedScaleProg is a never-halting per-hart compute loop in disjoint
// windows: mostly ALU with one store per iteration, the same mix the
// scheduler-equivalence fuzz gate exercises at full randomness.
func schedScaleProg() []byte {
	a := asm.New(hart.DramBase)
	a.Li(asm.S0, hart.DramBase+0x10000)
	a.Slli(asm.T0, asm.A0, 12)
	a.Add(asm.S0, asm.S0, asm.T0)
	a.Li(asm.T1, 0)
	a.Li(asm.T2, 7)
	a.Label("loop")
	for i := 0; i < 12; i++ {
		a.Addi(asm.T1, asm.T1, 1)
		a.Xor(asm.T4, asm.T4, asm.T1)
	}
	a.Mul(asm.T3, asm.T1, asm.T2)
	a.Sd(asm.T4, asm.S0, 0)
	a.J("loop")
	return a.MustAssemble()
}

// schedScaleMachine builds a fresh native machine for one measurement.
func schedScaleMachine(newCfg func() *hart.Config, harts int, kind hart.SchedKind) (*hart.Machine, error) {
	cfg := newCfg()
	cfg.Harts = harts
	m, err := hart.NewMachine(cfg, 1<<20)
	if err != nil {
		return nil, err
	}
	m.Sched = kind
	if err := m.LoadImage(hart.DramBase, schedScaleProg()); err != nil {
		return nil, err
	}
	m.Reset(hart.DramBase)
	return m, nil
}

// SchedScale measures seq-vs-par host throughput at each hart count and
// asserts per-hart cycle equivalence between the schedulers.
func SchedScale(newCfg func() *hart.Config, hartCounts []int) ([]*SchedScaleResult, error) {
	name := newCfg().Name
	var out []*SchedScaleResult
	for _, harts := range hartCounts {
		var nsSeq, nsPar int64
		var cycSeq, cycPar uint64
		for rep := 0; rep < schedScaleReps; rep++ {
			ms, err := schedScaleMachine(newCfg, harts, hart.SchedSeq)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			ms.Run(schedScaleSteps)
			dSeq := time.Since(t0).Nanoseconds()

			mp, err := schedScaleMachine(newCfg, harts, hart.SchedPar)
			if err != nil {
				return nil, err
			}
			t0 = time.Now()
			mp.RunParBudget(schedScaleSteps)
			dPar := time.Since(t0).Nanoseconds()

			var cs, cp uint64
			for i := range ms.Harts {
				if ms.Harts[i].Cycles != mp.Harts[i].Cycles {
					return nil, fmt.Errorf(
						"schedscale %s harts=%d: scheduler changed the cycle model: hart%d seq=%d par=%d",
						name, harts, i, ms.Harts[i].Cycles, mp.Harts[i].Cycles)
				}
				cs += ms.Harts[i].Cycles
				cp += mp.Harts[i].Cycles
			}
			if rep == 0 || dSeq < nsSeq {
				nsSeq = dSeq
			}
			if rep == 0 || dPar < nsPar {
				nsPar = dPar
			}
			cycSeq, cycPar = cs, cp
		}
		_ = cycPar
		r := &SchedScaleResult{
			Platform: name, Harts: harts,
			Steps: schedScaleSteps, Cycles: cycSeq,
			HostNsSeq: nsSeq, HostNsPar: nsPar,
		}
		totalIns := float64(schedScaleSteps) * float64(harts)
		if nsSeq > 0 {
			r.MIPSSeq = totalIns * 1e3 / float64(nsSeq)
		}
		if nsPar > 0 {
			r.MIPSPar = totalIns * 1e3 / float64(nsPar)
			r.Speedup = float64(nsSeq) / float64(nsPar)
		}
		out = append(out, r)
	}
	return out, nil
}
