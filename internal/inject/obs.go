package inject

import "govfm/internal/obs"

// Observability wiring: every injection is visible on the event stream as
// an "inject:<kind>" instant on the monitor track (so a Perfetto view of a
// chaos run shows exactly when each perturbation landed, against the
// containment reactions it provoked), and a snapshot-time collector
// reports faults injected vs. faults the monitor detected.

// injectEventNames precomputes the instant names so the injection path
// allocates nothing.
var injectEventNames = func() [NumKinds]string {
	var names [NumKinds]string
	for k := Kind(0); int(k) < NumKinds; k++ {
		names[k] = "inject:" + k.String()
	}
	return names
}()

// AttachTracer wires only the event stream — no metrics collector. The
// chaos campaign uses this for its short-lived per-rebuild injectors,
// whose counts are aggregated into the campaign Report instead (a
// registry collector per rebuild would shadow its predecessors).
func (in *Injector) AttachTracer(t *obs.Tracer) { in.tr = t }

// AttachObs wires the injector into an observer: injection instants on
// the trace, plus a collector reporting inject.total, inject.detected
// (monitor fault records since attachment — the faults the monitor
// caught), and per-kind injection counts.
func (in *Injector) AttachObs(o *obs.Observer) {
	if o == nil {
		return
	}
	in.tr = o.Trace
	r := o.Metrics
	if r == nil {
		return
	}
	base := in.mon.FaultCount
	r.Collect(func(emit func(name string, value uint64)) {
		emit("inject.total", uint64(in.Total))
		emit("inject.detected", uint64(in.mon.FaultCount-base))
		for k := Kind(0); int(k) < NumKinds; k++ {
			if n := in.Counts[k]; n > 0 {
				emit("inject."+k.String(), uint64(n))
			}
		}
	})
}

// observe emits the injection instant. Args: hart, pc at injection, kind,
// world.
func (in *Injector) observe(k Kind, hartID int, pc, cycles uint64, w uint64) {
	if in.tr == nil {
		return
	}
	in.tr.Emit(obs.Event{
		Kind:  obs.KInstant,
		Track: obs.MonitorTrack,
		TS:    cycles,
		Name:  injectEventNames[k],
		Args:  [4]uint64{uint64(hartID), pc, uint64(k), w},
	})
}
