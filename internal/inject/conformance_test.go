package inject

import (
	"fmt"
	"testing"
)

// TestPolicyConformance sweeps every policy through both fault decks —
// the classic chaos deck (bit flips, rogue firmware, interrupt storms,
// MMIO errors) and the TEE deck (forged confidential-compute lifecycle
// hypercalls, wall probes) — and asserts the shared containment
// contract: the campaign terminates with zero failures, the policy's
// integrity hash never changes, and (in TEE mode) the Dorami wall
// invariant is verified after every world switch.
//
// This is the table-driven conformance gate: a policy that passes here
// upholds the monitor's crash-containment contract under both ordinary
// firmware misbehavior and adversarial confidential-compute traffic.
func TestPolicyConformance(t *testing.T) {
	policies := []string{"sandbox", "keystone", "ace"}
	decks := []struct {
		name string
		tee  bool
	}{
		{"chaos", false},
		{"tee", true},
	}

	faults := 12
	firmwares := []string{"gosbi", "minsbi", "rtos"}
	if testing.Short() {
		faults = 6
		firmwares = []string{"gosbi"}
	}

	for _, deck := range decks {
		for _, pol := range policies {
			t.Run(fmt.Sprintf("%s/%s", deck.name, pol), func(t *testing.T) {
				rep, err := RunCampaign(CampaignConfig{
					Seed:           1,
					Platforms:      []string{"visionfive2"},
					Firmwares:      firmwares,
					Policies:       []string{pol},
					FaultsPerCombo: faults,
					TEE:            deck.tee,
				})
				if err != nil {
					t.Fatalf("campaign: %v", err)
				}
				if rep.TotalInjected == 0 {
					t.Fatal("campaign injected no faults — the deck did not fire")
				}
				for _, r := range rep.Results {
					for _, f := range r.Failures {
						t.Errorf("%s/%s/%s: %s", r.Platform, r.Firmware, r.Policy, f)
					}
					if !r.HashIntact {
						t.Errorf("%s/%s/%s: monitor/policy integrity hash changed under the %s deck",
							r.Platform, r.Firmware, r.Policy, deck.name)
					}
					if deck.tee && r.WallChecks == 0 {
						t.Errorf("%s/%s/%s: TEE campaign verified the wall on no world switch",
							r.Platform, r.Firmware, r.Policy)
					}
				}
			})
		}
	}
}
