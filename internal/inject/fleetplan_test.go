package inject

import "testing"

func TestFleetPlannerDeterministic(t *testing.T) {
	a, b := NewFleetPlanner(7), NewFleetPlanner(7)
	for i := 0; i < 5*NumFleetKinds; i++ {
		if ka, kb := a.Next(), b.Next(); ka != kb {
			t.Fatalf("draw %d diverged: %v vs %v", i, ka, kb)
		}
	}
}

func TestFleetPlannerDeckCoverage(t *testing.T) {
	p := NewFleetPlanner(1)
	// Every round of NumFleetKinds draws must contain each kind exactly
	// once — that is the deck guarantee.
	for round := 0; round < 4; round++ {
		seen := map[FleetFaultKind]int{}
		for i := 0; i < NumFleetKinds; i++ {
			seen[p.Next()]++
		}
		for k := 0; k < NumFleetKinds; k++ {
			if seen[FleetFaultKind(k)] != 1 {
				t.Fatalf("round %d: kind %v dealt %d times, want 1",
					round, FleetFaultKind(k), seen[FleetFaultKind(k)])
			}
		}
	}
}

func TestFleetFaultKindStrings(t *testing.T) {
	for k := 0; k < NumFleetKinds; k++ {
		if s := FleetFaultKind(k).String(); s == "unknown" || s == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
