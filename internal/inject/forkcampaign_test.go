package inject

import "testing"

// TestForkCampaignMatchesColdCampaign runs a small chaos slice twice —
// cold-boot rebuilds vs fork-spawned rebuilds — and expects the same
// robustness verdict (zero failures) from both.
func TestForkCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign slice is slow")
	}
	for _, fork := range []bool{false, true} {
		cfg := CampaignConfig{
			Seed: 3, Platforms: []string{"visionfive2"},
			Firmwares: []string{"gosbi"}, Policies: []string{"sandbox"},
			FaultsPerCombo: 6, Fork: fork,
		}
		rep, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("fork=%v: %v", fork, err)
		}
		if rep.TotalFailures > 0 {
			t.Fatalf("fork=%v: %d failures:\n%s", fork, rep.TotalFailures, rep.Format())
		}
		if rep.TotalInjected != 6 {
			t.Fatalf("fork=%v: injected %d", fork, rep.TotalInjected)
		}
		if !rep.Results[0].HashIntact {
			t.Fatalf("fork=%v: hash invariant broken", fork)
		}
	}
}
