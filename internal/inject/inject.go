// Package inject is the deterministic fault-injection engine: seeded,
// reproducible perturbations of a running machine that model the failure
// classes a virtual firmware monitor must survive — cosmic-ray bit flips
// in firmware state, spurious and lost device interrupts, and rogue
// firmware behaviors (PMP overreach, runaway CSR writes, lockups, control
// flow that never returns to the OS). The chaos campaign (campaign.go)
// sweeps these across every firmware × policy × platform combination and
// asserts the monitor's crash containment holds: the OS keeps making
// forward progress, or the machine stops with a structured MonitorFault.
package inject

import (
	"fmt"
	"math/rand"

	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/obs"
)

// Kind classifies an injectable fault.
type Kind int

const (
	// BitFlipMem flips one bit in the firmware's memory image.
	BitFlipMem Kind = iota
	// BitFlipGPR flips one bit in a general-purpose register while the
	// firmware world is executing (OS registers are never touched: a
	// corrupted OS is not a firmware fault the monitor could contain).
	BitFlipGPR
	// BitFlipCSR flips one bit in a firmware-owned virtual M-mode CSR
	// (mscratch/mepc/mtvec/mcause/mtval). The supervisor shadow and the
	// delegation registers belong to the OS and are never targeted.
	BitFlipCSR
	// BitFlipVPMP flips one bit in a virtual PMP address register.
	BitFlipVPMP
	// SpuriousIRQ raises a virtual device interrupt the firmware never
	// asked for (CLINT software interrupt or an immediate timer).
	SpuriousIRQ
	// LostIRQ drops the firmware's pending virtual interrupts and disarms
	// its timer (the OS's own deadline is never touched).
	LostIRQ
	// PMPOverreach redirects the firmware's control flow into OS memory —
	// the canonical rogue-firmware access the isolation policy must block.
	PMPOverreach
	// RunawayCSR models wild CSR writes: the virtual mtvec is overwritten
	// with garbage (including zero), so the next virtual trap double-faults.
	RunawayCSR
	// StuckWFI masks every virtual M interrupt so the firmware's next wfi
	// can never be woken.
	StuckWFI
	// NeverMret corrupts the virtual mepc so the firmware's return to the
	// OS jumps into the weeds instead.
	NeverMret
	// MMIOError makes the next device access on the bus fail with an
	// access fault while the firmware is executing.
	MMIOError

	// The TEE deck (tee.go): forged confidential-compute lifecycle calls
	// and probes aimed at the Dorami monitor wall. The hypercall kinds
	// hijack the OS into a generated gadget that issues real ecalls
	// through the monitor's trap path, so the policy FSM sees exactly
	// what a malicious host would send.

	// TEEForgedSteal issues a COVH run-CVM call with an arbitrary id from
	// host context — a forged hart steal.
	TEEForgedSteal
	// TEEForgedReturn issues a COVG guest call from host context with no
	// CVM occupying the hart — the host impersonating a confidential
	// guest.
	TEEForgedReturn
	// TEEDoubleDonate promotes the same physical region twice in a row;
	// the second donation must be refused by the page ledger.
	TEEDoubleDonate
	// TEEReclaimStorm fires a reclaim/destroy/reclaim burst at a random
	// CVM id — including reclaim-while-running and destroy-while-running
	// orderings the FSM must refuse.
	TEEReclaimStorm
	// TEEWallProbe redirects the firmware's control flow into the
	// monitor's own memory: the locked PMP wall must fault it.
	TEEWallProbe

	NumKinds int = iota
)

// TEEDeck lists the confidential-compute fault kinds, for campaigns that
// sweep only the TEE boundary.
var TEEDeck = []Kind{TEEForgedSteal, TEEForgedReturn, TEEDoubleDonate,
	TEEReclaimStorm, TEEWallProbe}

func (k Kind) String() string {
	switch k {
	case BitFlipMem:
		return "bitflip-mem"
	case BitFlipGPR:
		return "bitflip-gpr"
	case BitFlipCSR:
		return "bitflip-csr"
	case BitFlipVPMP:
		return "bitflip-vpmp"
	case SpuriousIRQ:
		return "spurious-irq"
	case LostIRQ:
		return "lost-irq"
	case PMPOverreach:
		return "pmp-overreach"
	case RunawayCSR:
		return "runaway-csr"
	case StuckWFI:
		return "stuck-wfi"
	case NeverMret:
		return "never-mret"
	case MMIOError:
		return "mmio-error"
	case TEEForgedSteal:
		return "tee-forged-steal"
	case TEEForgedReturn:
		return "tee-forged-return"
	case TEEDoubleDonate:
		return "tee-double-donate"
	case TEEReclaimStorm:
		return "tee-reclaim-storm"
	case TEEWallProbe:
		return "tee-wall-probe"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault describes one injected fault.
type Fault struct {
	Kind   Kind
	Hart   int
	Cycles uint64 // hart cycle count at injection
	World  core.World
	Detail string
}

func (f Fault) String() string {
	return fmt.Sprintf("%s@hart%d cyc=%d %v: %s", f.Kind, f.Hart, f.Cycles, f.World, f.Detail)
}

// firmwareOnly marks kinds that are only meaningful while the firmware
// world is live on the hart; when it is not, the injector falls back to a
// state-targeting kind whose effect materializes at the next firmware entry.
var firmwareOnly = [NumKinds]bool{
	BitFlipGPR:   true,
	PMPOverreach: true,
	MMIOError:    true,
	TEEWallProbe: true,
}

// osOnly marks kinds that hijack the OS into a hypercall gadget: they
// need the hart executing the OS world directly (virtual S-mode, bare
// addressing) so the generated ecall sequence reaches the policy through
// the real trap path.
var osOnly = [NumKinds]bool{
	TEEForgedSteal:  true,
	TEEForgedReturn: true,
	TEEDoubleDonate: true,
	TEEReclaimStorm: true,
}

// universal lists the kinds applicable in any world.
var universal = func() []Kind {
	var ks []Kind
	for k := Kind(0); int(k) < NumKinds; k++ {
		if !firmwareOnly[k] && !osOnly[k] {
			ks = append(ks, k)
		}
	}
	return ks
}()

// Injector applies seeded, deterministic faults to a monitored machine.
// The same seed and injection schedule reproduce the same fault sequence.
type Injector struct {
	rng  *rand.Rand
	mon  *core.Monitor
	m    *hart.Machine
	tr   *obs.Tracer // nil unless observability is attached (obs.go)
	deck []Kind      // nil: all kinds; otherwise Inject draws from this set

	// Total counts all injected faults; Counts breaks them down by kind.
	Total  int
	Counts [NumKinds]int
}

// SetDeck restricts Inject to the given fault kinds (world-gating
// fallbacks still apply). A nil deck restores the full set.
func (in *Injector) SetDeck(deck []Kind) { in.deck = deck }

// New builds an injector for a monitored machine.
func New(seed int64, mon *core.Monitor) *Injector {
	return &Injector{
		rng: rand.New(rand.NewSource(seed)),
		mon: mon,
		m:   mon.Machine,
	}
}

// Inject applies one randomly chosen fault appropriate for the hart's
// current world and returns its description.
func (in *Injector) Inject() Fault {
	ctx := in.mon.Ctx[in.rng.Intn(len(in.mon.Ctx))]
	fw := ctx.World() == core.WorldFirmware && !ctx.Degraded
	var k Kind
	if len(in.deck) > 0 {
		k = in.deck[in.rng.Intn(len(in.deck))]
	} else {
		k = Kind(in.rng.Intn(NumKinds))
	}
	if (firmwareOnly[k] && !fw) || (osOnly[k] && !in.gadgetReady(ctx)) {
		k = universal[in.rng.Intn(len(universal))]
	}
	return in.InjectKind(ctx, k)
}

// InjectKind applies one fault of the given kind to ctx's hart. Kinds
// gated on the firmware world are applied unconditionally — tests use this
// to force a specific scenario.
func (in *Injector) InjectKind(ctx *core.HartCtx, k Kind) Fault {
	h := ctx.Hart
	v := ctx.V
	detail := ""

	switch k {
	case BitFlipMem:
		addr := core.FirmwareBase + uint64(in.rng.Int63n(core.FirmwareSize))
		bit := uint(in.rng.Intn(8))
		if b, err := in.m.Bus.ReadBytes(addr, 1); err == nil {
			b[0] ^= 1 << bit
			_ = in.m.Bus.WriteBytes(addr, b)
		}
		detail = fmt.Sprintf("mem[%#x] bit %d", addr, bit)

	case BitFlipGPR:
		reg := 1 + in.rng.Intn(31)
		bit := uint(in.rng.Intn(64))
		h.Regs[reg] ^= 1 << bit
		detail = fmt.Sprintf("x%d bit %d", reg, bit)

	case BitFlipCSR:
		targets := []struct {
			name string
			p    *uint64
		}{
			{"mscratch", &v.Mscratch}, {"mepc", &v.Mepc}, {"mtvec", &v.Mtvec},
			{"mcause", &v.Mcause}, {"mtval", &v.Mtval},
		}
		t := targets[in.rng.Intn(len(targets))]
		bit := uint(in.rng.Intn(64))
		*t.p ^= 1 << bit
		detail = fmt.Sprintf("v%s bit %d", t.name, bit)

	case BitFlipVPMP:
		idx := in.rng.Intn(v.PMP.NumEntries())
		bit := uint(in.rng.Intn(54)) // PMP address registers are 54 bits
		v.PMP.ForceAddr(idx, v.PMP.Addr(idx)^1<<bit)
		in.mon.ReinstallPMP(ctx)
		detail = fmt.Sprintf("vpmpaddr%d bit %d", idx, bit)

	case SpuriousIRQ:
		if in.rng.Intn(2) == 0 {
			in.mon.VClint().SetVirtMsip(h.ID, true)
			detail = "virtual msip raised"
		} else {
			in.mon.VClint().SetVirtMtimecmp(h.ID, 0)
			detail = "virtual mtimecmp rewound to 0"
		}

	case LostIRQ:
		in.mon.VClint().SetVirtMsip(h.ID, false)
		in.mon.VClint().SetVirtMtimecmp(h.ID, ^uint64(0))
		detail = "virtual msip cleared, virtual timer disarmed"

	case PMPOverreach:
		off := uint64(in.rng.Int63n(0x10000)) &^ 3
		h.PC = core.OSBase + off
		detail = fmt.Sprintf("firmware pc redirected to %#x", h.PC)

	case RunawayCSR:
		switch in.rng.Intn(3) {
		case 0:
			v.Mtvec = 0
		case 1:
			v.Mtvec = in.rng.Uint64()
		default:
			v.Mtvec = core.MiralisBase // points into the monitor's carve-out
		}
		detail = fmt.Sprintf("vmtvec = %#x", v.Mtvec)

	case StuckWFI:
		v.Mie = 0
		in.mon.VClint().SetVirtMsip(h.ID, false)
		detail = "vmie = 0, pending wakeups cleared"

	case NeverMret:
		bits := in.rng.Uint64() | 1<<12 // guaranteed non-trivial displacement
		v.Mepc ^= bits
		detail = fmt.Sprintf("vmepc corrupted to %#x", v.Mepc)

	case MMIOError:
		n := 1 + in.rng.Intn(2)
		in.m.Bus.InjectDeviceFaults(n)
		detail = fmt.Sprintf("next %d device access(es) fail", n)

	case TEEForgedSteal, TEEForgedReturn, TEEDoubleDonate, TEEReclaimStorm:
		detail = in.injectTEECall(ctx, k)

	case TEEWallProbe:
		off := uint64(in.rng.Int63n(core.MiralisSize)) &^ 3
		h.PC = core.MiralisBase + off
		detail = fmt.Sprintf("firmware pc redirected into monitor memory %#x", h.PC)
	}

	in.Total++
	in.Counts[k]++
	in.observe(k, h.ID, h.PC, h.Cycles, uint64(ctx.World()))
	return Fault{Kind: k, Hart: h.ID, Cycles: h.Cycles, World: ctx.World(), Detail: detail}
}
