package inject

import (
	"fmt"

	"govfm/internal/asm"
	"govfm/internal/core"
	"govfm/internal/policy/ace"
	"govfm/internal/rv"
)

// The TEE fault deck: forged confidential-compute lifecycle calls. Rather
// than poking policy hooks directly, the injector hijacks the OS into a
// freshly assembled gadget that issues the forged calls as real ecalls —
// the full trap path (monitor entry, policy dispatch, world switches, PMP
// reprogramming) runs exactly as it would for a malicious host kernel.
// The gadget ends in a counting spin loop, so the hart keeps retiring
// instructions and the campaign's forward-progress invariant still
// distinguishes a live machine from a wedged one.

const (
	// teeGadgetBase is scratch OS memory the gadgets are assembled into —
	// far above any campaign kernel image, inside the OS window.
	teeGadgetBase = core.OSBase + 0x700_0000
	// teeRegionBase/teeRegionSize is the donation target for the
	// double-donate attack: a NAPOT region in otherwise unused OS memory.
	teeRegionBase = core.OSBase + 0x600_0000
	teeRegionSize = 0x10000
)

// teeCall is one forged hypercall in a gadget sequence.
type teeCall struct {
	ext, fn, a0, a1, a2 uint64
}

// gadgetReady reports whether a hypercall gadget can be injected right
// now: the hart must be directly executing the OS world in virtual S-mode
// with bare addressing (the gadget lives at a physical address), and not
// under degraded-mode servicing.
func (in *Injector) gadgetReady(ctx *core.HartCtx) bool {
	return ctx.World() == core.WorldOS && !ctx.Degraded &&
		ctx.VirtMode == rv.ModeS && ctx.Hart.CSR.Satp == 0
}

// buildGadget assembles the forged-call sequence followed by the spin
// loop.
func buildGadget(calls []teeCall) []byte {
	a := asm.New(teeGadgetBase)
	for _, c := range calls {
		a.Li(asm.A7, c.ext)
		a.Li(asm.A6, c.fn)
		a.Li(asm.A0, c.a0)
		a.Li(asm.A1, c.a1)
		a.Li(asm.A2, c.a2)
		a.Ecall()
	}
	a.Label("spin")
	a.Addi(asm.T6, asm.T6, 1)
	a.J("spin")
	return a.MustAssemble()
}

// injectTEECall writes the gadget for kind k and redirects the OS into it.
func (in *Injector) injectTEECall(ctx *core.HartCtx, k Kind) string {
	var calls []teeCall
	var detail string
	switch k {
	case TEEForgedSteal:
		id := uint64(in.rng.Intn(ace.MaxCVMs + 2)) // including out-of-range ids
		calls = []teeCall{{ext: rv.SBIExtCoveHost, fn: ace.FnRunCVM, a0: id}}
		detail = fmt.Sprintf("forged run-CVM(%d) from host", id)
	case TEEForgedReturn:
		fns := []uint64{ace.FnGuestExit, ace.FnGuestSharePage, ace.FnGuestAttest}
		fn := fns[in.rng.Intn(len(fns))]
		calls = []teeCall{{ext: rv.SBIExtCoveGuest, fn: fn, a0: in.rng.Uint64()}}
		detail = fmt.Sprintf("forged COVG fn %#x with no CVM on the hart", fn)
	case TEEDoubleDonate:
		promote := teeCall{ext: rv.SBIExtCoveHost, fn: ace.FnPromoteToCVM,
			a0: teeRegionBase, a1: teeRegionSize, a2: teeRegionBase}
		calls = []teeCall{promote, promote}
		detail = fmt.Sprintf("promote [%#x,+%#x) twice", uint64(teeRegionBase), uint64(teeRegionSize))
	case TEEReclaimStorm:
		id := uint64(in.rng.Intn(ace.MaxCVMs))
		calls = []teeCall{
			{ext: rv.SBIExtCoveHost, fn: ace.FnReclaimPage, a0: id},
			{ext: rv.SBIExtCoveHost, fn: ace.FnDestroyCVM, a0: id},
			{ext: rv.SBIExtCoveHost, fn: ace.FnReclaimPage, a0: id},
		}
		detail = fmt.Sprintf("reclaim/destroy/reclaim burst at cvm %d", id)
	}
	if err := in.m.Bus.WriteBytes(teeGadgetBase, buildGadget(calls)); err != nil {
		return "gadget write failed: " + err.Error()
	}
	h := ctx.Hart
	h.PC = teeGadgetBase
	h.Waiting = false
	return detail
}
