package inject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"govfm"
	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/obs"
	"govfm/internal/policy/ace"
	"govfm/internal/policy/sandbox"
)

// The chaos campaign: for every firmware × policy × platform combination,
// boot a monitored system with containment and the watchdog enabled, let
// it reach steady state, then repeatedly inject faults and verify the
// recovery contract — after every fault the guest resumes forward progress
// (retired instructions keep increasing), or the machine stops with a
// structured MonitorFault on record. A fault that wedges the machine with
// neither is a containment failure.

// CampaignConfig parameterizes a chaos campaign. Zero values select the
// standard sweep.
type CampaignConfig struct {
	Seed           int64
	Platforms      []string // default: visionfive2 + p550
	Firmwares      []string // default: gosbi, minsbi, rtos
	Policies       []string // default: sandbox, keystone, ace
	FaultsPerCombo int      // default 12
	GapSteps       uint64   // steps between injections (default 500)
	RecoverySteps  uint64   // progress window after a fault (default 400k)
	WatchdogBudget uint64   // firmware cycle budget (default 2M)

	// Obs, when non-nil, receives an "inject:<kind>" instant for every
	// injection on the trace. Detection metrics live in the Report (the
	// campaign rebuilds injectors, so per-injector collectors would
	// shadow each other); cmd/chaos surfaces them into the registry.
	Obs *obs.Observer

	// Cancelled, when non-nil, is polled between combos and between
	// injected faults; a true return abandons the campaign with
	// ErrCampaignCanceled. The vfmd fleet threads its per-job deadlines
	// and shutdown drain through this.
	Cancelled func() bool

	// TEE restricts the injector to the TEE fault deck (forged lifecycle
	// hypercalls, wall probes) and adds the confidential-compute
	// invariants after every fault: the Dorami wall holds on every hart,
	// the ACE FSM's structural invariants hold, and the monitor-state
	// fingerprint never changes.
	TEE bool

	// Fork makes every combo boot once: the post-warmup machine is
	// snapshotted (copy-on-write, with the monitor and policy forked
	// alongside), and every rebuild spawns from that image instead of
	// re-booting and re-warming a fresh system. Behaviorally equivalent —
	// the fork-equivalence suite is the gate — but rebuilds cost
	// microseconds instead of a full simulated boot.
	Fork bool
}

func (c *CampaignConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Platforms) == 0 {
		c.Platforms = []string{"visionfive2", "p550"}
	}
	if len(c.Firmwares) == 0 {
		c.Firmwares = []string{"gosbi", "minsbi", "rtos"}
	}
	if len(c.Policies) == 0 {
		c.Policies = []string{"sandbox", "keystone", "ace"}
	}
	if c.FaultsPerCombo == 0 {
		c.FaultsPerCombo = 12
	}
	if c.GapSteps == 0 {
		c.GapSteps = 500
	}
	if c.RecoverySteps == 0 {
		// Must comfortably exceed the watchdog budget in steps: a starved
		// OS only resumes after the budget expires, and the campaign has to
		// keep running long enough to see it.
		c.RecoverySteps = 1_000_000
	}
	if c.WatchdogBudget == 0 {
		// Well above the longest legitimate firmware residency (gosbi's
		// full boot is ~140k cycles) and well below RecoverySteps.
		c.WatchdogBudget = 400_000
	}
}

// ComboResult is the outcome of one firmware × policy × platform cell.
type ComboResult struct {
	Platform, Firmware, Policy string

	Injected  int // faults applied
	Contained int // fault records with Contained=true
	Reported  int // total fault records
	Rebuilds  int // fresh systems built (after halts / prolonged degraded mode)

	// ByKind breaks Injected down by fault kind (accumulated across
	// rebuilds).
	ByKind [NumKinds]int

	WatchdogFires    uint64
	FirmwareRestarts uint64
	DegradedCalls    uint64

	// WallChecks counts Dorami-wall invariant checks that passed on world
	// switches (the campaign fails the combo if any world switch skipped
	// or failed its check).
	WallChecks uint64

	// HashIntact reports the sandbox invariant: the policy's boot-image
	// hash and the OS text window never changed (always true for non-
	// sandbox policies, which do not hash).
	HashIntact bool

	// Failures lists faults after which the machine neither made forward
	// progress nor produced a fault record, and any recovered panics.
	Failures []string
}

func (r *ComboResult) String() string {
	return fmt.Sprintf("%-12s %-7s %-9s inj=%-3d contained=%-3d reported=%-3d wdog=%-2d restarts=%-2d degraded=%-3d rebuilds=%-2d wall=%-4d fail=%d",
		r.Platform, r.Firmware, r.Policy, r.Injected, r.Contained, r.Reported,
		r.WatchdogFires, r.FirmwareRestarts, r.DegradedCalls, r.Rebuilds,
		r.WallChecks, len(r.Failures))
}

// Report aggregates a campaign.
type Report struct {
	Results []ComboResult

	TotalInjected  int
	TotalContained int
	TotalReported  int
	TotalFailures  int

	// ByKind is the campaign-wide injection breakdown.
	ByKind [NumKinds]int
}

// Format renders the campaign as an aligned table.
func (r *Report) Format() string {
	var b strings.Builder
	for i := range r.Results {
		fmt.Fprintln(&b, r.Results[i].String())
	}
	fmt.Fprintf(&b, "total: %d injected, %d contained, %d reported, %d failure(s)\n",
		r.TotalInjected, r.TotalContained, r.TotalReported, r.TotalFailures)
	return b.String()
}

// ErrCampaignCanceled reports a campaign abandoned through
// CampaignConfig.Cancelled (deadline, shutdown).
var ErrCampaignCanceled = errors.New("campaign canceled")

// RunCampaign executes the full sweep.
func RunCampaign(cfg CampaignConfig) (*Report, error) {
	cfg.defaults()
	rep := &Report{}
	combo := int64(0)
	for _, plat := range cfg.Platforms {
		for _, fw := range cfg.Firmwares {
			for _, pol := range cfg.Policies {
				if cfg.Cancelled != nil && cfg.Cancelled() {
					return nil, ErrCampaignCanceled
				}
				combo++
				res, err := runCombo(cfg, plat, fw, pol, cfg.Seed*1000+combo)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", plat, fw, pol, err)
				}
				rep.Results = append(rep.Results, *res)
				rep.TotalInjected += res.Injected
				rep.TotalContained += res.Contained
				rep.TotalReported += res.Reported
				rep.TotalFailures += len(res.Failures)
				for k := 0; k < NumKinds; k++ {
					rep.ByKind[k] += res.ByKind[k]
				}
			}
		}
	}
	return rep, nil
}

// comboSystem is one live system under test plus its invariant baselines.
type comboSystem struct {
	sys     *govfm.System
	sandbox *sandbox.Policy // non-nil for the sandbox policy
	osHash  uint64          // FNV-64a of the OS text window after warmup
	vmHash  uint64          // sandbox BootHash after warmup
}

// hashWindow is how much of the OS image the campaign hashes for the
// integrity invariant — the text the boot kernel executes from.
const hashWindow = 1024

func buildCombo(cfg CampaignConfig, plat, fw, pol string) (*comboSystem, error) {
	cs := &comboSystem{}
	var policy govfm.Policy
	switch pol {
	case "sandbox":
		// Report mode: log violations and keep running — the paper's
		// production posture, and the one that lets a rogue firmware hammer
		// the sandbox until the watchdog writes it off.
		cs.sandbox = sandbox.New(sandbox.Options{Report: true})
		policy = cs.sandbox
	case "keystone":
		policy = govfm.KeystonePolicy()
	case "ace":
		policy = govfm.ACEPolicy()
	case "none":
		policy = nil
	default:
		return nil, fmt.Errorf("unknown policy %q", pol)
	}

	sys, err := govfm.New(govfm.Config{
		Platform:       govfm.Platform(plat),
		Harts:          1,
		Firmware:       govfm.FirmwareKind(fw),
		Kernel:         govfm.BootKernel(1, 400, 6, 120),
		Virtualize:     true,
		Policy:         policy,
		Containment:    true,
		WatchdogBudget: cfg.WatchdogBudget,
	})
	if err != nil {
		return nil, err
	}
	cs.sys = sys

	// Warm up to steady state: the OS retiring instructions (or, for the
	// OS-less RTOS, a fixed slice of its test run).
	h := sys.Machine.Harts[0]
	if fw == "rtos" {
		sys.Machine.Run(2_000)
	} else {
		sys.Machine.RunUntil(func() bool { return h.SInstret > 64 }, 3_000_000)
	}
	cs.osHash = osTextHash(sys)
	if cs.sandbox != nil {
		cs.vmHash = cs.sandbox.BootHash
	}
	return cs, nil
}

// comboSource produces fresh systems for one campaign cell. In Fork mode
// the first build cold-boots and captures a post-warmup image plus a
// never-run fork template (machine + monitor clone) whose state matches
// the image; every later build spawns from that pair in O(pages touched)
// instead of re-simulating the boot.
type comboSource struct {
	cfg           CampaignConfig
	plat, fw, pol string

	img            *hart.Image
	template       *govfm.System
	osHash, vmHash uint64
}

func (s *comboSource) build() (*comboSystem, error) {
	if !s.cfg.Fork {
		return buildCombo(s.cfg, s.plat, s.fw, s.pol)
	}
	if s.img == nil {
		cs, err := buildCombo(s.cfg, s.plat, s.fw, s.pol)
		if err != nil {
			return nil, err
		}
		img, err := cs.sys.Machine.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("post-warmup snapshot: %w", err)
		}
		tm, err := hart.SpawnFromImage(img)
		if err != nil {
			return nil, err
		}
		tmpl := &govfm.System{Machine: tm, Platform: cs.sys.Platform}
		if cs.sys.Monitor != nil {
			tmpl.Monitor, err = cs.sys.Monitor.Fork(tm)
			if err != nil {
				return nil, fmt.Errorf("monitor fork: %w", err)
			}
		}
		s.img, s.template = img, tmpl
		s.osHash, s.vmHash = cs.osHash, cs.vmHash
		return cs, nil
	}
	child, err := hart.SpawnFromImage(s.img)
	if err != nil {
		return nil, err
	}
	cs := &comboSystem{
		sys:    &govfm.System{Machine: child, Platform: s.template.Platform},
		osHash: s.osHash,
		vmHash: s.vmHash,
	}
	if s.template.Monitor != nil {
		cs.sys.Monitor, err = s.template.Monitor.Fork(child)
		if err != nil {
			return nil, fmt.Errorf("monitor fork: %w", err)
		}
		if sb, ok := cs.sys.Monitor.Policy.(*sandbox.Policy); ok {
			cs.sandbox = sb
		}
	}
	return cs, nil
}

func osTextHash(sys *govfm.System) uint64 {
	img, err := sys.Machine.Bus.ReadBytes(core.OSBase, hashWindow)
	if err != nil {
		return 0
	}
	fh := fnv.New64a()
	fh.Write(img)
	return fh.Sum64()
}

// progress returns the forward-progress counter for the combo: retired
// S-mode instructions when an OS runs, total retired instructions for the
// OS-less RTOS.
func progress(cs *comboSystem, fw string) uint64 {
	h := cs.sys.Machine.Harts[0]
	if fw == "rtos" {
		return h.Instret
	}
	return h.SInstret
}

// progressThreshold is how many newly retired instructions count as the
// guest being alive again after a fault.
const progressThreshold = 16

func runCombo(cfg CampaignConfig, plat, fw, pol string, seed int64) (res *ComboResult, err error) {
	res = &ComboResult{Platform: plat, Firmware: fw, Policy: pol, HashIntact: true}
	defer func() {
		if r := recover(); r != nil {
			// The acceptance bar is zero process panics: anything that
			// escapes the monitor's own boundaries is a campaign failure,
			// not a crash.
			res.Failures = append(res.Failures, fmt.Sprintf("panic escaped containment: %v", r))
			err = nil
		}
	}()

	src := &comboSource{cfg: cfg, plat: plat, fw: fw, pol: pol}
	cs, err := src.build()
	if err != nil {
		return nil, err
	}
	inj := New(seed, cs.sys.Monitor)
	if cfg.Obs != nil {
		inj.AttachTracer(cfg.Obs.Trace)
	}
	if cfg.TEE {
		inj.SetDeck(TEEDeck)
	}
	monHash := cs.sys.Monitor.MonitorStateHash()
	degradedRounds := 0

	// teeCheck asserts the confidential-compute invariants on the live
	// system: the Dorami wall holds on every hart, the ACE FSM is
	// structurally consistent, and the monitor's protected state is
	// byte-identical to its post-boot fingerprint.
	teeCheck := func(after string) {
		mon := cs.sys.Monitor
		for _, ctx := range mon.Ctx {
			if werr := mon.CheckWall(ctx); werr != nil {
				res.Failures = append(res.Failures,
					fmt.Sprintf("%s: hart%d: %v", after, ctx.Hart.ID, werr))
			}
		}
		if ap, ok := mon.Policy.(*ace.Policy); ok && ap != nil {
			if ierr := ap.CheckInvariants(); ierr != nil {
				res.Failures = append(res.Failures,
					fmt.Sprintf("%s: %v", after, ierr))
			}
		}
		if h := mon.MonitorStateHash(); h != monHash {
			res.Failures = append(res.Failures,
				fmt.Sprintf("%s: monitor state hash changed %#x -> %#x", after, monHash, h))
		}
	}

	finishCombo := func() {
		mon := cs.sys.Monitor
		for k := 0; k < NumKinds; k++ {
			res.ByKind[k] += inj.Counts[k]
		}
		for _, f := range mon.Faults {
			res.Reported++
			if f.Contained {
				res.Contained++
			}
			if f.Kind == core.FaultWallBreach {
				res.Failures = append(res.Failures,
					fmt.Sprintf("wall breach recorded: %s", f.Reason))
			}
		}
		st := mon.TotalStats()
		res.WatchdogFires += st.WatchdogFires
		res.FirmwareRestarts += st.FirmwareRestarts
		res.DegradedCalls += st.DegradedCalls
		res.WallChecks += st.WallChecks
		if st.WallChecks != st.WorldSwitches {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"wall checked on %d of %d world switches", st.WallChecks, st.WorldSwitches))
		}
		if cs.sandbox != nil {
			if cs.sandbox.BootHash != cs.vmHash || osTextHash(cs.sys) != cs.osHash {
				res.HashIntact = false
			}
		}
		if cfg.TEE {
			teeCheck("combo finish")
		}
	}

	rebuild := func() error {
		finishCombo()
		res.Rebuilds++
		degradedRounds = 0
		ncs, err := src.build()
		if err != nil {
			return err
		}
		cs = ncs
		inj = New(seed+int64(res.Rebuilds), cs.sys.Monitor)
		if cfg.Obs != nil {
			inj.AttachTracer(cfg.Obs.Trace)
		}
		if cfg.TEE {
			inj.SetDeck(TEEDeck)
		}
		monHash = cs.sys.Monitor.MonitorStateHash()
		return nil
	}

	for i := 0; i < cfg.FaultsPerCombo; i++ {
		if cfg.Cancelled != nil && cfg.Cancelled() {
			return nil, ErrCampaignCanceled
		}
		if halted, _ := cs.sys.Machine.Halted(); halted || degradedRounds >= 4 {
			if err := rebuild(); err != nil {
				return nil, err
			}
		}

		cs.sys.Machine.Run(cfg.GapSteps)
		mon := cs.sys.Monitor
		preFaults := mon.FaultCount
		f := inj.Inject()
		res.Injected++

		base := progress(cs, fw)
		progressed := cs.sys.Machine.RunUntil(func() bool {
			return progress(cs, fw) > base+progressThreshold
		}, cfg.RecoverySteps)
		halted, reason := cs.sys.Machine.Halted()

		switch {
		case progressed:
			// Forward progress: the fault was absorbed or contained.
		case halted && mon.FaultCount > preFaults:
			// The machine stopped, but with a structured fault on record —
			// a reported, diagnosable end state.
		case halted && strings.HasPrefix(reason, "guest-exit"):
			// The guest ended its own run through the exit device — a
			// controlled shutdown (possibly reporting the corruption it
			// detected), not a wedge.
		default:
			res.Failures = append(res.Failures,
				fmt.Sprintf("%v: no forward progress and no fault record (halted=%v reason=%q)",
					f, halted, reason))
			// A wedged system poisons every later measurement: start fresh
			// so the remaining faults are still informative.
			if err := rebuild(); err != nil {
				return nil, err
			}
		}

		if cfg.TEE {
			teeCheck(f.String())
		}

		if mon.Ctx[0].Degraded {
			degradedRounds++
		}
	}
	finishCombo()
	return res, nil
}
