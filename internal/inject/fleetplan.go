// Fleet-level fault planning: where inject.go perturbs a single running
// machine, the fleet plan attacks the control plane that hosts many of
// them — worker panics, jobs that stall or crawl, requests that vanish or
// arrive twice, machines halted mid-job. The vfmd fleet chaos campaign
// (internal/vfmd/fleetchaos.go) draws faults from this planner and
// asserts the supervision layer's invariants hold: the service never
// crashes, every job reaches a terminal state, no machine lock leaks.
package inject

import "math/rand"

// FleetFaultKind classifies a control-plane fault.
type FleetFaultKind int

const (
	// FleetWorkerPanic crashes the job function on the worker — the
	// supervision boundary must convert it into a JobFailed with a
	// structured fault report.
	FleetWorkerPanic FleetFaultKind = iota
	// FleetStuckJob stalls a job well past its wall-clock deadline; the
	// cooperative cancellation check after the stall must kill it.
	FleetStuckJob
	// FleetSlowJob stalls a job briefly but within its deadline; it must
	// still complete.
	FleetSlowJob
	// FleetDropRequest discards an HTTP response after the server
	// processed the request — the client sees a transport error and must
	// retry without double-running anything.
	FleetDropRequest
	// FleetDupRequest sends the same submission twice; idempotency keys
	// must dedupe it to one job.
	FleetDupRequest
	// FleetMachineKill halts a machine mid-job, modeling a node loss; the
	// job fails with a kill fault and the machine is quarantined and
	// respawned from its snapshot.
	FleetMachineKill

	NumFleetKinds int = iota
)

func (k FleetFaultKind) String() string {
	switch k {
	case FleetWorkerPanic:
		return "worker-panic"
	case FleetStuckJob:
		return "stuck-job"
	case FleetSlowJob:
		return "slow-job"
	case FleetDropRequest:
		return "drop-request"
	case FleetDupRequest:
		return "dup-request"
	case FleetMachineKill:
		return "machine-kill"
	}
	return "unknown"
}

// FleetPlanner deals fault kinds deterministically from a seed. Kinds are
// drawn deck-style — every kind appears once per round of NumFleetKinds
// draws, in seeded-shuffled order — so even a short campaign covers every
// fault class instead of leaving coverage to chance.
type FleetPlanner struct {
	rng  *rand.Rand
	deck []FleetFaultKind
	pos  int
}

// NewFleetPlanner builds a planner; the same seed deals the same
// sequence.
func NewFleetPlanner(seed int64) *FleetPlanner {
	p := &FleetPlanner{rng: rand.New(rand.NewSource(seed))}
	p.reshuffle()
	return p
}

func (p *FleetPlanner) reshuffle() {
	if p.deck == nil {
		p.deck = make([]FleetFaultKind, NumFleetKinds)
		for i := range p.deck {
			p.deck[i] = FleetFaultKind(i)
		}
	}
	p.rng.Shuffle(len(p.deck), func(i, j int) {
		p.deck[i], p.deck[j] = p.deck[j], p.deck[i]
	})
	p.pos = 0
}

// Next deals the next fault kind.
func (p *FleetPlanner) Next() FleetFaultKind {
	if p.pos >= len(p.deck) {
		p.reshuffle()
	}
	k := p.deck[p.pos]
	p.pos++
	return k
}

// Intn exposes the planner's seeded stream for auxiliary choices (which
// machine to kill, how long to stall) so a whole campaign replays from
// one seed.
func (p *FleetPlanner) Intn(n int) int { return p.rng.Intn(n) }
