package inject

import (
	"strings"
	"testing"

	"govfm"
	"govfm/internal/core"
	"govfm/internal/policy/sandbox"
)

// buildContained builds a gosbi system with containment and the watchdog
// enabled, the configuration every containment test starts from.
func buildContained(t *testing.T, budget uint64, policy govfm.Policy) *govfm.System {
	t.Helper()
	sys, err := govfm.New(govfm.Config{
		Platform:       "visionfive2",
		Harts:          1,
		Kernel:         govfm.BootKernel(1, 400, 6, 120),
		Virtualize:     true,
		Policy:         policy,
		Containment:    true,
		WatchdogBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// warmup runs the system until the OS is demonstrably executing.
func warmup(t *testing.T, sys *govfm.System) {
	t.Helper()
	h := sys.Machine.Harts[0]
	if !sys.Machine.RunUntil(func() bool { return h.SInstret > 64 }, 3_000_000) {
		t.Fatalf("OS never reached steady state (sinstret=%d)", h.SInstret)
	}
}

// TestChaosSmoke is the in-process version of `cmd/chaos -smoke`: a seeded
// sweep over every firmware × policy combination on one platform, asserting
// the containment contract — every fault is absorbed, contained, or ends in
// a reported halt; none wedges the machine.
func TestChaosSmoke(t *testing.T) {
	rep, err := RunCampaign(CampaignConfig{
		Seed:           7,
		Platforms:      []string{"visionfive2"},
		FaultsPerCombo: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 9; rep.TotalInjected != want {
		t.Errorf("injected %d faults, want %d", rep.TotalInjected, want)
	}
	for _, r := range rep.Results {
		for _, f := range r.Failures {
			t.Errorf("%s/%s/%s: %s", r.Platform, r.Firmware, r.Policy, f)
		}
		if !r.HashIntact {
			t.Errorf("%s/%s/%s: integrity hash changed", r.Platform, r.Firmware, r.Policy)
		}
	}
}

// TestInjectorDeterminism: the same seed on the same machine state produces
// the same fault sequence — the property every reproduction relies on.
func TestInjectorDeterminism(t *testing.T) {
	var seqs [2][]string
	for round := 0; round < 2; round++ {
		sys := buildContained(t, 2_000_000, nil)
		warmup(t, sys)
		inj := New(42, sys.Monitor)
		for i := 0; i < 20; i++ {
			f := inj.Inject()
			seqs[round] = append(seqs[round], f.String())
		}
	}
	for i := range seqs[0] {
		if seqs[0][i] != seqs[1][i] {
			t.Fatalf("fault %d diverged:\n  %s\n  %s", i, seqs[0][i], seqs[1][i])
		}
	}
}

// TestWatchdogDetectionLatency asserts the acceptance bound: a stuck
// firmware (here: one that revoked the OS's entire memory grant, starving
// it in a fault loop the monitor never sees a trap from) is detected
// within the configured cycle budget, plus bounded detection slack.
func TestWatchdogDetectionLatency(t *testing.T) {
	const budget = 200_000
	sys := buildContained(t, budget, nil)
	warmup(t, sys)
	mon := sys.Monitor
	ctx := mon.Ctx[0]
	h := sys.Machine.Harts[0]

	// Rogue-firmware PMP programming: wipe every virtual PMP entry. In the
	// OS world no entry matches, so S-mode is denied all memory.
	for i := 0; i < ctx.V.PMP.NumEntries(); i++ {
		ctx.V.PMP.ForceCfg(i, 0)
		ctx.V.PMP.ForceAddr(i, 0)
	}
	mon.ReinstallPMP(ctx)
	injected := h.Cycles

	if !sys.Machine.RunUntil(func() bool { return mon.FaultCount > 0 }, 2_000_000) {
		t.Fatal("watchdog never fired on a starved OS")
	}
	f := mon.Faults[0]
	if f.Kind != core.FaultWatchdog {
		t.Fatalf("first fault is %v, want watchdog: %v", f.Kind, f)
	}
	latency := f.Cycles - injected
	if latency > budget+20_000 {
		t.Errorf("detection latency %d exceeds budget %d + slack", latency, budget)
	}
	if latency+5_000 < budget {
		t.Errorf("detection latency %d implausibly below budget %d", latency, budget)
	}
	if !f.Contained {
		t.Errorf("watchdog fault not contained: %v", f)
	}
	if f.Dump == "" {
		t.Error("fault record has no state dump")
	}
	if !ctx.Degraded {
		t.Error("starved OS should have pushed the monitor into degraded mode")
	}
	// The recovered OS must actually resume: the degraded-mode virtual PMP
	// grants memory again. The kernel may notice the disruption and take its
	// failure exit — that is still the OS running; what containment rules
	// out is a silent wedge.
	base := h.SInstret
	sys.Run(1_000_000)
	halted, reason := sys.Machine.Halted()
	if h.SInstret == base && !(halted && strings.HasPrefix(reason, "guest-exit")) {
		t.Fatalf("OS did not resume after containment (sinstret %d->%d, halted=%v %q)",
			base, h.SInstret, halted, reason)
	}
}

// TestContainmentRestartDuringBoot: a double fault before the OS launches
// restarts the firmware from its boot snapshot, and the boot then completes
// normally.
func TestContainmentRestartDuringBoot(t *testing.T) {
	sys := buildContained(t, 2_000_000, nil)
	mon := sys.Monitor
	ctx := mon.Ctx[0]
	h := sys.Machine.Harts[0]

	// A few steps into the firmware's boot, wreck it: control flow into the
	// monitor's own carve-out (a fetch the PMP denies) with an unprogrammed
	// trap vector, so the resulting virtual trap has nowhere to go.
	sys.Machine.Run(50)
	if ctx.World() != core.WorldFirmware {
		t.Fatalf("expected firmware world during boot, got %v", ctx.World())
	}
	ctx.V.Mtvec = 0
	h.PC = core.MiralisBase

	halted, reason := sys.Run(0)
	if !halted || reason != "guest-exit-pass" {
		t.Fatalf("machine did not complete after restart: halted=%v reason=%q", halted, reason)
	}
	st := mon.TotalStats()
	if st.FirmwareRestarts != 1 {
		t.Errorf("FirmwareRestarts = %d, want 1", st.FirmwareRestarts)
	}
	if mon.FaultCount == 0 {
		t.Fatal("no fault recorded")
	}
	f := mon.Faults[0]
	if f.Kind != core.FaultDoubleFault || !f.Contained {
		t.Errorf("fault = %v (contained=%v), want contained double-fault", f.Kind, f.Contained)
	}
	if ctx.Degraded {
		t.Error("boot-time containment must restart, not degrade")
	}
}

// TestDegradedMode: once the OS runs, a firmware double fault diverts to
// degraded mode and the monitor's own SBI surface carries the OS to a
// clean shutdown.
func TestDegradedMode(t *testing.T) {
	sys := buildContained(t, 2_000_000, nil)
	warmup(t, sys)
	mon := sys.Monitor
	ctx := mon.Ctx[0]

	// Runaway CSR write: the virtual trap vector is gone. The next OS trap
	// the monitor re-injects into the firmware double-faults immediately.
	ctx.V.Mtvec = 0

	halted, reason := sys.Run(0)
	if !halted || reason != "guest-exit-pass" {
		t.Fatalf("degraded run did not complete cleanly: halted=%v reason=%q", halted, reason)
	}
	if !ctx.Degraded {
		t.Fatal("monitor never entered degraded mode")
	}
	st := mon.TotalStats()
	if st.DegradedCalls == 0 {
		t.Error("no SBI calls were answered in degraded mode")
	}
	if mon.FaultCount == 0 {
		t.Fatal("no fault recorded")
	}
	if f := mon.Faults[0]; f.Kind != core.FaultDoubleFault || !f.Contained {
		t.Errorf("fault = %v (contained=%v), want contained double-fault", f.Kind, f.Contained)
	}
}

// TestLockupContained: a virtual wfi with every virtual M interrupt masked
// is detected at emulation time as a lockup and contained.
func TestLockupContained(t *testing.T) {
	sys := buildContained(t, 2_000_000, nil)
	mon := sys.Monitor
	ctx := mon.Ctx[0]
	sys.Machine.Run(50) // into the firmware's boot

	ctx.V.Mie = 0
	const wfi = 0x10500073
	vpc := mon.VerifEmulate(ctx, wfi, ctx.Hart.PC)

	if mon.FaultCount == 0 {
		t.Fatal("no fault recorded for a hopeless wfi")
	}
	if f := mon.Faults[0]; f.Kind != core.FaultLockup || !f.Contained {
		t.Errorf("fault = %v (contained=%v), want contained lockup", f.Kind, f.Contained)
	}
	if st := mon.TotalStats(); st.FirmwareRestarts != 1 {
		t.Errorf("FirmwareRestarts = %d, want 1 (boot-time lockup restarts)", st.FirmwareRestarts)
	}
	if vpc != core.FirmwareBase {
		t.Errorf("containment resumed at %#x, want firmware entry %#x", vpc, core.FirmwareBase)
	}
}

// panicPolicy panics on the first OS trap it sees — a stand-in for a bug
// anywhere in the monitor's trap-handling path.
type panicPolicy struct{ core.BasePolicy }

func (panicPolicy) Name() string { return "panic-test" }
func (panicPolicy) OnOSTrap(*core.HartCtx, uint64, uint64) core.Action {
	panic("injected policy bug")
}

// TestPanicBoundary: a Go panic inside trap handling becomes a structured
// MonitorFault and a machine halt — never a process crash.
func TestPanicBoundary(t *testing.T) {
	sys := buildContained(t, 2_000_000, panicPolicy{})
	halted, reason := sys.Run(5_000_000)
	if !halted {
		t.Fatal("machine did not halt on a monitor panic")
	}
	if !strings.Contains(reason, "monitor panic") {
		t.Errorf("halt reason %q does not identify the panic", reason)
	}
	mon := sys.Monitor
	if mon.FaultCount == 0 {
		t.Fatal("no fault recorded")
	}
	f := mon.Faults[0]
	if f.Kind != core.FaultPanic {
		t.Errorf("fault kind = %v, want panic", f.Kind)
	}
	if !strings.Contains(f.Reason, "injected policy bug") {
		t.Errorf("fault reason %q does not carry the panic value", f.Reason)
	}
	if f.Dump == "" {
		t.Error("panic fault has no state dump")
	}
}

// TestSandboxMisbehaviorHook: the sandbox policy observes containment
// events through OnFirmwareMisbehavior and counts them as violations.
func TestSandboxMisbehaviorHook(t *testing.T) {
	sb := sandbox.New(sandbox.Options{Report: true})
	sys := buildContained(t, 2_000_000, sb)
	warmup(t, sys)
	ctx := sys.Monitor.Ctx[0]
	before := sb.Violations
	ctx.V.Mtvec = 0
	sys.Run(0)
	if !ctx.Degraded {
		t.Fatal("expected degraded mode")
	}
	if sb.Violations <= before {
		t.Error("sandbox did not count the misbehavior as a violation")
	}
}
