package trace

import (
	"strings"
	"testing"

	"govfm/internal/hart"
	"govfm/internal/rv"
)

// fakeHart builds a hart whose traps we can synthesize.
func fakeHart() *hart.Hart {
	cfg := hart.VisionFive2()
	return hart.New(0, cfg, nil)
}

func fire(h *hart.Hart, cause, tval uint64, from rv.Mode) {
	h.OnTrap(hart.TrapInfo{
		Cause: cause, Tval: tval, FromMode: from, ToMode: rv.ModeM,
	})
}

func TestClassification(t *testing.T) {
	var now uint64
	c := NewCollector(0, func() uint64 { return now })
	h := fakeHart()
	c.Attach(h)

	// Time-CSR read: illegal instruction whose tval encodes csrr rd, time.
	timeRead := uint64(uint32(rv.CSRTime)<<20 | rv.F3Csrrs<<12 | 10<<7 | rv.OpSystem)
	fire(h, rv.ExcIllegalInstr, timeRead, rv.ModeS)
	// Other illegal instruction.
	fire(h, rv.ExcIllegalInstr, 0xFFFF_FFFF, rv.ModeS)
	// Misaligned.
	fire(h, rv.ExcLoadAddrMisaligned, 0x1001, rv.ModeS)
	fire(h, rv.ExcStoreAddrMisaligned, 0x1001, rv.ModeS)
	// SBI calls classified by a7.
	h.Regs[17] = rv.SBIExtTimer
	fire(h, rv.ExcEcallFromS, 0, rv.ModeS)
	h.Regs[17] = rv.SBIExtIPI
	fire(h, rv.ExcEcallFromS, 0, rv.ModeS)
	h.Regs[17] = rv.SBIExtRfence
	fire(h, rv.ExcEcallFromS, 0, rv.ModeS)
	h.Regs[17] = rv.SBIExtDebug
	fire(h, rv.ExcEcallFromS, 0, rv.ModeS)
	// Interrupts.
	fire(h, rv.Cause(rv.IntMSoft, true), 0, rv.ModeS)
	fire(h, rv.Cause(rv.IntMTimer, true), 0, rv.ModeS)
	fire(h, rv.Cause(rv.IntMExt, true), 0, rv.ModeS)
	// Traps already in M, or to S, are not counted.
	fire(h, rv.ExcIllegalInstr, 0, rv.ModeM)
	h.OnTrap(hart.TrapInfo{Cause: rv.ExcEcallFromU, FromMode: rv.ModeU, ToMode: rv.ModeS})

	want := map[string]uint64{
		CauseReadTime:   1,
		CauseMisaligned: 2,
		CauseSetTimer:   2, // SBI set_timer + M-timer interrupt
		CauseIPI:        2, // SBI IPI + M-soft interrupt
		CauseRfence:     1,
		CauseOther:      3, // bad illegal, DBCN ecall, M-ext interrupt
	}
	for k, v := range want {
		if c.Total[k] != v {
			t.Errorf("%s = %d, want %d", k, c.Total[k], v)
		}
	}
	if c.TrapsToM != 11 {
		t.Errorf("TrapsToM = %d, want 11", c.TrapsToM)
	}
	wantShare := float64(11-3) / 11
	if s := c.TopShare(); s != wantShare {
		t.Errorf("TopShare = %f, want %f", s, wantShare)
	}
}

// TestClassifyHExtension pins the bucketing of the hypervisor-extension
// trap causes a nested-virtualization workload produces: the three
// guest-page-fault flavors, the virtual-instruction trap, and VS-mode
// ecalls classified by SBI extension like any other supervisor ecall.
func TestClassifyHExtension(t *testing.T) {
	tests := []struct {
		name  string
		cause uint64
		tval  uint64
		a7    uint64
		want  string
	}{
		{"fetch-gpf", rv.ExcInstrGuestPageFault, 0x8820_0000 >> 2, 0, CauseGuestPageFault},
		{"load-gpf", rv.ExcLoadGuestPageFault, 1 << 30, 0, CauseGuestPageFault},
		{"store-gpf", rv.ExcStoreGuestPageFault, 1 << 30, 0, CauseGuestPageFault},
		{"virtual-instr", rv.ExcVirtualInstr, 0x22000073, 0, CauseVirtualInstr},
		{"vs-ecall-timer", rv.ExcEcallFromVS, 0, rv.SBIExtTimer, CauseSetTimer},
		{"vs-ecall-ipi", rv.ExcEcallFromVS, 0, rv.SBIExtIPI, CauseIPI},
		{"vs-ecall-rfence", rv.ExcEcallFromVS, 0, rv.SBIExtRfence, CauseRfence},
		{"vs-ecall-hypercall", rv.ExcEcallFromVS, 0, 0x4859, CauseOther},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.cause, tc.tval, tc.a7); got != tc.want {
				t.Errorf("Classify(%d, %#x, %#x) = %q, want %q",
					tc.cause, tc.tval, tc.a7, got, tc.want)
			}
		})
	}
	for _, b := range []string{CauseGuestPageFault, CauseVirtualInstr} {
		found := false
		for _, have := range Buckets {
			if have == b {
				found = true
			}
		}
		if !found {
			t.Errorf("bucket %q missing from Buckets", b)
		}
	}
}

func TestWindows(t *testing.T) {
	var now uint64
	c := NewCollector(100, func() uint64 { return now })
	h := fakeHart()
	c.Attach(h)
	fire(h, rv.ExcLoadAddrMisaligned, 0, rv.ModeS)
	now = 50
	fire(h, rv.ExcLoadAddrMisaligned, 0, rv.ModeS)
	now = 150
	fire(h, rv.ExcStoreAddrMisaligned, 0, rv.ModeS)
	now = 310
	fire(h, rv.ExcStoreAddrMisaligned, 0, rv.ModeS)
	if len(c.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(c.Windows))
	}
	if c.Windows[0].StartTick != 0 || c.Windows[0].Counts[CauseMisaligned] != 2 {
		t.Error("window 0 wrong")
	}
	if c.Windows[1].StartTick != 100 || c.Windows[1].Counts[CauseMisaligned] != 1 {
		t.Error("window 1 wrong")
	}
	if c.Windows[2].StartTick != 300 {
		t.Error("window 2 start")
	}
}

func TestChainedOnTrap(t *testing.T) {
	var called int
	h := fakeHart()
	h.OnTrap = func(hart.TrapInfo) { called++ }
	c := NewCollector(0, func() uint64 { return 0 })
	c.Attach(h)
	fire(h, rv.ExcLoadAddrMisaligned, 0, rv.ModeS)
	if called != 1 {
		t.Error("existing OnTrap hook must still run")
	}
	if c.TrapsToM != 1 {
		t.Error("collector must also run")
	}
}

func TestFormat(t *testing.T) {
	c := NewCollector(0, func() uint64 { return 0 })
	h := fakeHart()
	c.Attach(h)
	fire(h, rv.ExcLoadAddrMisaligned, 0, rv.ModeS)
	out := c.Format()
	if !strings.Contains(out, "misaligned") || !strings.Contains(out, "total") {
		t.Errorf("format output: %q", out)
	}
	if empty := NewCollector(0, func() uint64 { return 0 }); empty.TopShare() != 0 {
		t.Error("empty collector TopShare must be 0")
	}
}
