// Package trace collects trap statistics from a running machine: per-cause
// counters, windowed histories over simulated time (the paper's Fig. 3
// shows the distribution of M-mode trap causes in 500 ms windows across
// the Linux boot), and world-switch rates.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"govfm/internal/hart"
	"govfm/internal/obs"
	"govfm/internal/rv"
)

// Cause buckets matching the paper's Fig. 3 legend: the five offloadable
// causes plus "other".
const (
	CauseReadTime   = "read-time"
	CauseSetTimer   = "set-timer"
	CauseMisaligned = "misaligned"
	CauseIPI        = "ipi"
	CauseRfence     = "rfence"
	CauseOther      = "other"
	// H-extension buckets (nested-virtualization workloads only).
	CauseGuestPageFault = "guest-page-fault"
	CauseVirtualInstr   = "virtual-instruction"
)

// Buckets lists the Fig. 3 categories in display order, followed by the
// H-extension buckets that only appear when a hypervisor guest runs.
var Buckets = []string{CauseReadTime, CauseSetTimer, CauseMisaligned,
	CauseIPI, CauseRfence, CauseGuestPageFault, CauseVirtualInstr,
	CauseOther}

// Window is one sampling interval of trap-cause counts.
type Window struct {
	StartTick uint64
	Counts    map[string]uint64
}

// Collector classifies M-mode traps from the OS into Fig. 3 buckets.
// It is attached to harts via Attach and bucketed by CLINT time.
type Collector struct {
	WindowTicks uint64 // window length in mtime ticks
	timeFn      func() uint64

	Total   map[string]uint64
	Windows []Window
	current *Window

	// TrapsToM counts all traps that entered M-mode.
	TrapsToM uint64
}

// NewCollector creates a collector with the given window size in mtime
// ticks (0 disables windowing).
func NewCollector(windowTicks uint64, timeFn func() uint64) *Collector {
	return &Collector{
		WindowTicks: windowTicks,
		timeFn:      timeFn,
		Total:       make(map[string]uint64),
	}
}

// Attach hooks the collector into a hart's trap notification, classifying
// traps from S/U into M by their cause and the trapping context.
func (c *Collector) Attach(h *hart.Hart) {
	prev := h.OnTrap
	h.OnTrap = func(t hart.TrapInfo) {
		if prev != nil {
			prev(t)
		}
		if t.ToMode != rv.ModeM || t.FromMode == rv.ModeM {
			return
		}
		c.record(Classify(t.Cause, t.Tval, h.Reg(17)))
	}
}

// AttachTracer hooks the collector into an observability event stream
// instead of hart trap hooks: it subscribes to the tracer and classifies
// "trap:*" instants from the cause, tval, and SBI-extension args the hart
// recorded at emission time. A storeless tracer (obs.NewTracer(0)) makes
// this equivalent to Attach on every traced hart with zero ring cost.
func (c *Collector) AttachTracer(t *obs.Tracer) {
	t.Subscribe(func(e *obs.Event) {
		if e.Kind != obs.KInstant || !strings.HasPrefix(e.Name, "trap:") {
			return
		}
		modes := e.Args[obs.TrapArgModes]
		from, to := rv.Mode(modes>>8), rv.Mode(modes&0xff)
		if to != rv.ModeM || from == rv.ModeM {
			return
		}
		c.record(Classify(e.Args[obs.TrapArgCause], e.Args[obs.TrapArgTval],
			e.Args[obs.TrapArgA7]))
	})
}

// Classify maps a trap to a Fig. 3 bucket using the trap cause, the trap
// value, and (for ecalls) the SBI extension register a7 at the trap.
func Classify(cause, tval, a7 uint64) string {
	if rv.CauseIsInterrupt(cause) {
		switch rv.CauseCode(cause) {
		case rv.IntMSoft:
			return CauseIPI
		case rv.IntMTimer:
			// The machine timer interrupt is the delivery half of the
			// timer-deadline flow; Fig. 3 counts it with set-timer.
			return CauseSetTimer
		}
		return CauseOther
	}
	switch rv.CauseCode(cause) {
	case rv.ExcIllegalInstr:
		// Time CSR reads surface as illegal instructions.
		raw := uint32(tval)
		if raw>>20 == uint32(rv.CSRTime) && rv.OpcodeOf(raw) == rv.OpSystem {
			return CauseReadTime
		}
		return CauseOther
	case rv.ExcLoadAddrMisaligned, rv.ExcStoreAddrMisaligned:
		return CauseMisaligned
	case rv.ExcInstrGuestPageFault, rv.ExcLoadGuestPageFault,
		rv.ExcStoreGuestPageFault:
		return CauseGuestPageFault
	case rv.ExcVirtualInstr:
		return CauseVirtualInstr
	case rv.ExcEcallFromS, rv.ExcEcallFromU, rv.ExcEcallFromVS:
		switch a7 {
		case rv.SBIExtTimer, rv.SBILegacySetTimer:
			return CauseSetTimer
		case rv.SBIExtIPI, rv.SBILegacySendIPI:
			return CauseIPI
		case rv.SBIExtRfence, rv.SBILegacyRemoteFenceI, rv.SBILegacySfenceVMA:
			return CauseRfence
		}
		return CauseOther
	}
	return CauseOther
}

func (c *Collector) record(bucket string) {
	c.TrapsToM++
	c.Total[bucket]++
	if c.WindowTicks == 0 {
		return
	}
	now := c.timeFn()
	start := now - now%c.WindowTicks
	if c.current == nil || c.current.StartTick != start {
		c.Windows = append(c.Windows, Window{
			StartTick: start,
			Counts:    make(map[string]uint64),
		})
		c.current = &c.Windows[len(c.Windows)-1]
	}
	c.current.Counts[bucket]++
}

// TopShare returns the combined share of the five offloadable causes —
// the paper reports 99.98% on the VisionFive 2.
func (c *Collector) TopShare() float64 {
	if c.TrapsToM == 0 {
		return 0
	}
	top := c.TrapsToM - c.Total[CauseOther]
	return float64(top) / float64(c.TrapsToM)
}

// Format renders the total distribution as an aligned table.
func (c *Collector) Format() string {
	var b strings.Builder
	type kv struct {
		k string
		v uint64
	}
	rows := make([]kv, 0, len(Buckets))
	for _, k := range Buckets {
		rows = append(rows, kv{k, c.Total[k]})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	fmt.Fprintf(&b, "%-12s %12s %8s\n", "cause", "traps", "share")
	for _, r := range rows {
		share := 0.0
		if c.TrapsToM > 0 {
			share = 100 * float64(r.v) / float64(c.TrapsToM)
		}
		fmt.Fprintf(&b, "%-12s %12d %7.2f%%\n", r.k, r.v, share)
	}
	fmt.Fprintf(&b, "%-12s %12d\n", "total", c.TrapsToM)
	return b.String()
}
