package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// parseChrome decodes exported JSON back into the generic trace_event
// shape for validation.
func parseChrome(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(top.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	return top.TraceEvents
}

// checkWellFormed asserts per-tid monotonic timestamps and balanced B/E
// nesting — the invariants the exporter promises regardless of input.
func checkWellFormed(t *testing.T, evs []map[string]any) {
	t.Helper()
	lastTS := map[float64]float64{}
	depth := map[float64]int{}
	for i, e := range evs {
		ph, _ := e["ph"].(string)
		tid, _ := e["tid"].(float64)
		ts, _ := e["ts"].(float64)
		if ph == "M" {
			continue
		}
		if prev, ok := lastTS[tid]; ok && ts < prev {
			t.Fatalf("event %d: tid %v timestamp went backwards (%v < %v)", i, tid, ts, prev)
		}
		lastTS[tid] = ts
		switch ph {
		case "B":
			depth[tid]++
		case "E":
			depth[tid]--
			if depth[tid] < 0 {
				t.Fatalf("event %d: unmatched E on tid %v", i, tid)
			}
			if _, hasName := e["name"]; !hasName {
				t.Fatalf("event %d: E without a name", i)
			}
		case "i":
			if s, _ := e["s"].(string); s != "t" {
				t.Fatalf("event %d: instant scope = %q, want thread scope", i, s)
			}
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ph)
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %v ends with %d unclosed spans", tid, d)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(64)
	// Two harts plus the monitor, with interleaved clocks and a nested span.
	tr.Begin(0, 10, "world:firmware")
	tr.Begin(MonitorTrack, 12, "m-trap")
	tr.Instant(MonitorTrack, 13, "sbi:TIME")
	tr.End(MonitorTrack, 20)
	tr.Begin(1, 5, "world:firmware") // hart 1 clock behind hart 0 — fine, separate track
	tr.Instant(1, 6, "trap:ecall-s")
	tr.End(1, 9)
	tr.End(0, 30)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	evs := parseChrome(t, buf.Bytes())
	checkWellFormed(t, evs)

	// Thread metadata must name the monitor and both harts.
	names := map[string]bool{}
	for _, e := range evs {
		if e["ph"] == "M" && e["name"] == "thread_name" {
			args := e["args"].(map[string]any)
			names[args["name"].(string)] = true
		}
	}
	for _, want := range []string{"monitor", "hart0", "hart1"} {
		if !names[want] {
			t.Errorf("missing thread_name metadata for %q (have %v)", want, names)
		}
	}
}

func TestChromeTraceRepairsOrphans(t *testing.T) {
	// Simulate ring eviction: an End whose Begin is gone, and a Begin that
	// never Ends.
	events := []Event{
		{Kind: KEnd, Track: 0, TS: 5},                      // orphan End — must be dropped
		{Kind: KBegin, Track: 0, TS: 10, Name: "world:os"}, // never closed — must be auto-closed
		{Kind: KInstant, Track: 0, TS: 40, Name: "x"},
		{Kind: KInstant, Track: MonitorTrack, TS: 7, Name: "y"},
		{Kind: KInstant, Track: MonitorTrack, TS: 3, Name: "z"}, // backwards — must be clamped
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, parseChrome(t, buf.Bytes()))
}

func TestTrackName(t *testing.T) {
	if got := TrackName(MonitorTrack); got != "monitor" {
		t.Fatalf("monitor track named %q", got)
	}
	if got := TrackName(3); got != "hart3" {
		t.Fatalf("hart track named %q", got)
	}
}
