package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome/Perfetto trace_event export. The emitted JSON is the
// {"traceEvents": [...]} object form, loadable in ui.perfetto.dev and
// chrome://tracing. Each hart is one named thread ("hart0", "hart1", ...)
// of process 1 ("govfm"); machine/monitor events form the "monitor"
// thread. Timestamps are simulated cycles written into the "ts"
// microsecond field (1 simulated cycle renders as 1 µs — the absolute
// scale is meaningless for a simulator, the shape is what matters).
//
// The exporter makes two repairs so the output is always well-formed:
//
//   - Per-track timestamps are clamped to be monotonically non-decreasing.
//     Monitor-track events are emitted by whichever hart was executing, so
//     on multi-hart machines their clocks interleave.
//
//   - Begin/End pairs are re-matched per track: an End with no open Begin
//     (its Begin was evicted from the ring, or a firmware executed mret
//     without a prior trap) is dropped, and spans still open at the end of
//     the trace are closed at the final timestamp. Chrome's "E" events
//     take their name from the matched "B".

type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Meta        string        `json:"metadata_note,omitempty"`
}

const chromePID = 1

// chromeTID maps a track id to a stable Chrome thread id: the monitor
// track sorts first, harts follow in order.
func chromeTID(track int32) int {
	if track == MonitorTrack {
		return 1
	}
	return int(track) + 2
}

// WorldTrackBase offsets the per-hart world-residency tracks: track
// WorldTrackBase+i carries hart i's firmware/OS residency spans, kept
// separate from hart i's instruction-level track so world spans and
// trap-handling spans never have to nest into each other.
const WorldTrackBase int32 = 1 << 16

// TrackName renders the conventional name of a track.
func TrackName(track int32) string {
	if track == MonitorTrack {
		return "monitor"
	}
	if track >= WorldTrackBase {
		return fmt.Sprintf("hart%d-world", track-WorldTrackBase)
	}
	return fmt.Sprintf("hart%d", track)
}

// WriteChromeTrace writes events as Chrome trace_event JSON. Events must
// be in emission order (as returned by Tracer.Events).
func WriteChromeTrace(w io.Writer, events []Event) error {
	// Discover tracks and emit thread metadata in a stable order.
	trackSet := map[int32]bool{}
	for i := range events {
		trackSet[events[i].Track] = true
	}
	tracks := make([]int32, 0, len(trackSet))
	for tr := range trackSet {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool { return chromeTID(tracks[i]) < chromeTID(tracks[j]) })

	out := chromeTrace{Meta: "govfm simulated-time trace; ts unit = 1 simulated cycle"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID,
		Args: map[string]any{"name": "govfm"},
	})
	for _, tr := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: chromeTID(tr),
			Args: map[string]any{"name": TrackName(tr)},
		})
	}

	// Per-track normalization state.
	lastTS := map[int32]uint64{} // monotonic clamp
	open := map[int32][]string{} // stack of open span names
	for i := range events {
		e := &events[i]
		ts := e.TS
		if prev, ok := lastTS[e.Track]; ok && ts < prev {
			ts = prev
		}
		lastTS[e.Track] = ts

		ce := chromeEvent{
			Name: e.Name, PID: chromePID, TID: chromeTID(e.Track), TS: float64(ts),
		}
		if e.Args != [4]uint64{} {
			ce.Args = map[string]any{
				"a0": e.Args[0], "a1": e.Args[1], "a2": e.Args[2], "a3": e.Args[3],
			}
		}
		switch e.Kind {
		case KInstant:
			// Thread-scoped instant: stays on its own track instead of
			// drawing a full-height line across the whole trace.
			ce.Ph, ce.S = "i", "t"
		case KBegin:
			ce.Ph = "B"
			open[e.Track] = append(open[e.Track], e.Name)
		case KEnd:
			stack := open[e.Track]
			if len(stack) == 0 {
				continue // orphan End: its Begin predates the ring
			}
			ce.Ph = "E"
			ce.Name = stack[len(stack)-1]
			open[e.Track] = stack[:len(stack)-1]
		default:
			continue
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	// Close spans still open at the end of the trace.
	for _, tr := range tracks {
		for i := len(open[tr]) - 1; i >= 0; i-- {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: open[tr][i], Ph: "E", PID: chromePID,
				TID: chromeTID(tr), TS: float64(lastTS[tr]),
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
