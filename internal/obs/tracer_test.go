package obs

import "testing"

func TestRingOverflowKeepsNewestInOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KInstant, Track: 0, TS: uint64(i), Name: "e"})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.TS != want {
			t.Fatalf("event %d has TS %d, want %d (oldest-first ordering)", i, e.TS, want)
		}
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	if got := tr.Emitted(); got != 10 {
		t.Fatalf("Emitted() = %d, want 10", got)
	}
}

func TestStorelessTracerStillNotifiesSubscribers(t *testing.T) {
	tr := NewTracer(0)
	var seen int
	tr.Subscribe(func(e *Event) {
		if e.Name != "x" {
			t.Errorf("subscriber saw %q", e.Name)
		}
		seen++
	})
	for i := 0; i < 5; i++ {
		tr.Instant(2, uint64(i), "x")
	}
	if seen != 5 {
		t.Fatalf("subscriber saw %d events, want 5", seen)
	}
	if evs := tr.Events(); len(evs) != 0 {
		t.Fatalf("storeless tracer retained %d events", len(evs))
	}
	if tr.Dropped() != 0 {
		t.Fatal("storeless tracer reported drops")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Instant(0, 0, "x")
	tr.Begin(0, 0, "x")
	tr.End(0, 1)
	tr.Subscribe(func(*Event) {})
	if tr.Events() != nil || tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer leaked state")
	}
}
