// Package obs is the observability substrate for the simulator and the
// monitor: a low-overhead metrics registry (counters, gauges, sim-cycle
// histograms) and a structured event tracer recording spans and instants
// on the simulated timeline, with exporters for a plain-text metrics dump,
// machine-readable JSON (consumed by CI), and Perfetto/Chrome trace_event
// JSON.
//
// Two disciplines govern everything here, both inherited from the host
// fast paths (DESIGN.md, "Host fast paths vs. the simulated cycle model"):
//
//   - Architectural invisibility. Nothing in this package ever charges
//     simulated cycles or touches architectural state; a workload's cycle
//     and instret counts are bit-identical with observability enabled or
//     disabled. scripts/verify.sh enforces this with an equivalence gate.
//
//   - Cheap when off. Every instrument method is nil-receiver-safe, so a
//     subsystem can hold nil instrument pointers when no observer is
//     attached and pay a single predictable branch on the hot path.
//
// The simulator's own hot-path counters (TLB and decode-cache hit rates,
// page walks, trap causes) live as plain uint64 fields next to the state
// they count (see hart.PerfCounters) and are pulled into the registry at
// snapshot time through Collect callbacks — the per-instruction cost of
// observability is an ordinary increment, not an atomic or a map lookup.
package obs

import "os"

// Observer bundles a metrics registry and an event tracer. Subsystems
// accept an *Observer and tolerate nil (observability off).
type Observer struct {
	Metrics *Registry
	Trace   *Tracer

	opts Options // retained so forked children inherit the configuration
}

// Options configures a new Observer.
type Options struct {
	// TraceCap bounds the tracer's event ring (events beyond it evict the
	// oldest). Zero selects DefaultTraceCap; negative disables ring
	// storage entirely (subscribers still receive every event).
	TraceCap int
}

// DefaultTraceCap is the default event-ring bound: large enough for a
// full synthetic firmware+kernel boot, small enough to stay off the heap
// profiler's radar (~56 MiB of Event structs at 56 B each would be 1M
// events; a boot emits a few hundred thousand).
const DefaultTraceCap = 1 << 20

// New builds an Observer with a fresh registry and tracer.
func New(opts Options) *Observer {
	c := opts.TraceCap
	if c == 0 {
		c = DefaultTraceCap
	}
	if c < 0 {
		c = 0
	}
	return &Observer{
		Metrics: NewRegistry(),
		Trace:   NewTracer(c),
		opts:    opts,
	}
}

// Child builds a fresh Observer with this observer's configuration. A
// forked machine is observationally newborn — zeroed counters, empty
// trace ring — but keeps the parent's trace capacity and any future
// options. Nil-receiver-safe: a nil parent yields a default observer, so
// fork paths need not special-case observability-off origins.
func (o *Observer) Child() *Observer {
	if o == nil {
		return New(Options{})
	}
	return New(o.opts)
}

// WriteTraceFile writes the tracer's ring contents to path as Chrome
// trace_event JSON (loadable in Perfetto at ui.perfetto.dev or
// chrome://tracing).
func (o *Observer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteChromeTrace(f, o.Trace.Events())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// WriteMetricsFile writes a metrics snapshot to path as JSON (the form CI
// consumes and uploads as an artifact).
func (o *Observer) WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := o.Metrics.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
