package obs

import "testing"

func TestObserverChild(t *testing.T) {
	parent := New(Options{TraceCap: 4})
	parent.Metrics.Counter("traps").Add(7)
	parent.Trace.Instant(0, 100, "boot")

	child := parent.Child()
	if child == parent || child.Metrics == parent.Metrics || child.Trace == parent.Trace {
		t.Fatal("child must not share registry or tracer with parent")
	}
	if n := len(child.Trace.Events()); n != 0 {
		t.Fatalf("child trace ring not empty: %d events", n)
	}
	// The child inherits the parent's trace capacity: a cap-4 ring holds
	// at most 4 events no matter how many are emitted.
	for i := 0; i < 10; i++ {
		child.Trace.Instant(0, uint64(i), "e")
	}
	if n := len(child.Trace.Events()); n != 4 {
		t.Fatalf("child trace cap not inherited: ring holds %d events, want 4", n)
	}
	if parent.Metrics.Counter("traps").Load() != 7 {
		t.Fatal("parent counters disturbed by fork")
	}

	var nilObs *Observer
	c := nilObs.Child()
	if c == nil || c.Metrics == nil || c.Trace == nil {
		t.Fatal("nil parent must yield a default observer")
	}
}
