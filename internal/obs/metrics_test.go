package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race (scripts/verify.sh does) this doubles as the registry's
// race-freedom gate.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.concurrent")
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				// Exercise the get-or-create path concurrently too.
				r.Counter("test.concurrent").Add(0)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("lost increments: got %d want %d", got, workers*perWorker)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(3)
	r.Histogram("x").Observe(7)
	r.Collect(func(func(string, uint64)) { t.Fatal("collector ran on nil registry") })
	if s := r.Snapshot(); len(s.Values) != 0 {
		t.Fatalf("nil registry snapshot not empty: %v", s.Values)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1<<63 - 1, 63}, {1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := HistBucketIndex(c.v); got != c.bucket {
			t.Errorf("HistBucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := HistBucketBounds(c.bucket)
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside its bucket %d bounds [%d, %d]", c.v, c.bucket, lo, hi)
		}
	}

	h := &Histogram{}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestDumpAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(2)
	r.Gauge("a.gauge").Set(7)
	r.Histogram("c.hist").Observe(100)
	r.Collect(func(emit func(string, uint64)) { emit("d.collected", 42) })

	dump := r.Dump()
	for _, want := range []string{"a.gauge", "b.counter", "c.hist", "d.collected"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	// Sorted output: a.gauge before b.counter.
	if strings.Index(dump, "a.gauge") > strings.Index(dump, "b.counter") {
		t.Error("dump not sorted by name")
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if got.Values["b.counter"] != 2 || got.Values["a.gauge"] != 7 || got.Values["d.collected"] != 42 {
		t.Fatalf("JSON round-trip mismatch: %v", got.Values)
	}
	if got.Hists["c.hist"].Count != 1 || got.Hists["c.hist"].Sum != 100 {
		t.Fatalf("histogram JSON mismatch: %+v", got.Hists["c.hist"])
	}
}

func TestHitRatePct(t *testing.T) {
	if got := HitRatePct(0, 0); got != 0 {
		t.Fatalf("empty rate = %d", got)
	}
	if got := HitRatePct(3, 1); got != 75 {
		t.Fatalf("75%% rate = %d", got)
	}
}
