package obs

import "sync"

// Kind discriminates event records.
type Kind uint8

// Event kinds. Spans are recorded as raw Begin/End pairs on a track; the
// exporter pairs them up (and repairs ring-eviction orphans), matching the
// Chrome trace_event "B"/"E" phases.
const (
	KInstant Kind = iota
	KBegin
	KEnd
)

// MonitorTrack is the track id for events attributed to the machine or
// the monitor rather than a specific hart. Hart events use the hart id as
// their track.
const MonitorTrack int32 = -1

// Event is one record on the simulated timeline. TS is in simulated
// cycles of the emitting hart (tracks are independently clocked; the
// exporter normalizes each track to monotonic time). Args carry
// event-specific payload — for trap events: cause, tval, a7 (the SBI
// extension register at the trap), and the from/to privilege modes packed
// as from<<8|to.
type Event struct {
	Kind  Kind
	Track int32
	TS    uint64
	Name  string
	Args  [4]uint64
}

// Trap-event arg indexes (the hart's trap instants fill these; the Fig. 3
// collector and the exporter read them back).
const (
	TrapArgCause = 0
	TrapArgTval  = 1
	TrapArgA7    = 2
	TrapArgModes = 3 // from<<8 | to
)

// Tracer records events into a bounded ring and fans them out to
// subscribers. All methods tolerate a nil receiver. The ring is guarded by
// a mutex — event rates are per-trap, not per-instruction, so contention
// is negligible and concurrent harnesses stay race-free.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event // ring storage; nil when capacity is 0
	start   int     // index of the oldest event
	n       int     // live events
	emitted uint64  // total events ever emitted
	subs    []func(*Event)
}

// NewTracer builds a tracer with the given ring capacity. Capacity 0
// stores nothing — subscribers still see every event, which is how the
// Fig. 3 collector rides the stream without paying for storage.
func NewTracer(capacity int) *Tracer {
	t := &Tracer{}
	if capacity > 0 {
		t.buf = make([]Event, 0, capacity)
	}
	return t
}

// Subscribe registers fn to run synchronously on every subsequent event.
// The *Event is only valid for the duration of the call.
func (t *Tracer) Subscribe(fn func(*Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.subs = append(t.subs, fn)
	t.mu.Unlock()
}

// Emit records one event.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emitted++
	if len(t.subs) > 0 {
		// Copy before taking the address: handing &e itself to the
		// subscribers makes the parameter escape, which would heap-allocate
		// every Event at every call site — including the nil-receiver and
		// subscriber-less calls the trap path makes unconditionally.
		ec := e
		for _, fn := range t.subs {
			fn(&ec)
		}
	}
	if cap(t.buf) > 0 {
		if t.n < cap(t.buf) {
			t.buf = append(t.buf, e)
			t.n++
		} else {
			// Full: overwrite the oldest.
			t.buf[t.start] = e
			t.start = (t.start + 1) % cap(t.buf)
		}
	}
	t.mu.Unlock()
}

// Instant records a point event.
func (t *Tracer) Instant(track int32, ts uint64, name string) {
	t.Emit(Event{Kind: KInstant, Track: track, TS: ts, Name: name})
}

// Begin opens a span on track.
func (t *Tracer) Begin(track int32, ts uint64, name string) {
	t.Emit(Event{Kind: KBegin, Track: track, TS: ts, Name: name})
}

// End closes the innermost open span on track. The name is taken from the
// matching Begin at export time.
func (t *Tracer) End(track int32, ts uint64) {
	t.Emit(Event{Kind: KEnd, Track: track, TS: ts})
}

// Events returns the ring contents, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%cap(t.buf)])
	}
	return out
}

// Emitted returns the total number of events ever emitted (including ones
// the ring has since evicted).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Dropped returns how many events the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cap(t.buf) == 0 {
		return 0 // storeless tracers drop nothing they promised to keep
	}
	return t.emitted - uint64(t.n)
}
