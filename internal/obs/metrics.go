package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Increments are atomic so
// concurrent harnesses (the chaos campaign, parallel benchmarks) can share
// one registry; all methods tolerate a nil receiver so disabled
// instruments cost one branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric.
type Gauge struct {
	v atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v uint64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Load returns the current value.
func (g *Gauge) Load() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the number of histogram buckets: bucket 0 holds the value
// zero, bucket i (1..64) holds values v with bits.Len64(v) == i, i.e. the
// range [2^(i-1), 2^i-1]. Exponential buckets suit simulated-cycle
// durations, which span from a handful of cycles (a fast-path trap) to
// millions (a firmware boot phase).
const HistBuckets = 65

// Histogram accumulates a distribution of uint64 samples (typically
// simulated-cycle durations) in power-of-two buckets.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[HistBucketIndex(v)].Add(1)
}

// HistBucketIndex maps a sample to its bucket.
func HistBucketIndex(v uint64) int { return bits.Len64(v) }

// HistBucketBounds returns the inclusive [lo, hi] range of bucket i.
func HistBucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = 1 << (i - 1)
	if i == 64 {
		return lo, ^uint64(0)
	}
	return lo, 1<<i - 1
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"` // only non-empty buckets
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < HistBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			lo, hi := HistBucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return s
}

// Registry is a named collection of instruments. Instruments are created
// on first use and live for the registry's lifetime; lookups happen at
// attach time (or on cold paths), never per simulated instruction. All
// methods tolerate a nil receiver — a nil *Registry hands out nil
// instruments, which are themselves no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func(emit func(name string, value uint64))
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Collect registers a snapshot-time callback. Collectors let subsystems
// keep plain (non-atomic) hot-path counters next to their own state and
// surface them only when a snapshot is taken; the emitted name/value pairs
// appear alongside registry-owned instruments (same name: last emit wins).
func (r *Registry) Collect(fn func(emit func(name string, value uint64))) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Snapshot is a point-in-time view of every instrument.
type Snapshot struct {
	Values map[string]uint64       `json:"values"`
	Hists  map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures all instruments and runs every collector.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Values: map[string]uint64{}, Hists: map[string]HistSnapshot{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	collectors := append([]func(func(string, uint64)){}, r.collectors...)
	r.mu.Unlock()

	for name, c := range counters {
		s.Values[name] = c.Load()
	}
	for name, g := range gauges {
		s.Values[name] = g.Load()
	}
	for name, h := range hists {
		s.Hists[name] = h.snapshot()
	}
	for _, fn := range collectors {
		fn(func(name string, value uint64) { s.Values[name] = value })
	}
	return s
}

// Dump renders the snapshot as sorted, aligned plain text.
func (r *Registry) Dump() string {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Values))
	for n := range s.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-48s %d\n", n, s.Values[n])
	}
	hnames := make([]string, 0, len(s.Hists))
	for n := range s.Hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Hists[n]
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		fmt.Fprintf(&b, "%-48s count=%d sum=%d mean=%.1f\n", n, h.Count, h.Sum, mean)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "  [%d, %d]: %d\n", bk.Lo, bk.Hi, bk.Count)
		}
	}
	return b.String()
}

// WriteJSON emits the snapshot as machine-readable JSON (the form CI
// consumes and uploads as an artifact).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// HitRatePct is the shared helper for hit-rate reporting: the percentage
// of hits among hits+misses, as an integer in [0, 100] (metrics values are
// uint64). Returns 0 when there were no events.
func HitRatePct(hits, misses uint64) uint64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * hits / (hits + misses)
}
