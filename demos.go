package govfm

import (
	"govfm/internal/core"
	"govfm/internal/kernel"
)

// Demo images for the example applications: pre-built guest kernels that
// drive the Keystone and ACE policies, with their result areas exposed so
// callers can read back what happened.

// DemoResultAddr is where the demo kernels record their step results
// (eight 8-byte slots).
const DemoResultAddr = kernel.DemoResultAddr

// KeystoneDemo returns the host kernel and enclave payload for the enclave
// example: the host creates an enclave over the payload, runs it (with
// timer preemption when preempt is set), verifies isolation, and destroys
// it. n is the enclave's workload size (it computes sum 1..n).
func KeystoneDemo(n int, preempt bool) (host, enclave []byte, enclaveBase uint64) {
	host = kernel.BuildKeystoneHost(core.OSBase, n, preempt)
	enclave = kernel.BuildEnclavePayload(kernel.EnclaveBase, n)
	return host, enclave, kernel.EnclaveBase
}

// ACEDemo returns the host kernel and confidential-VM guest for the CVM
// example: the host promotes the guest region to a CVM, runs it, exchanges
// data through a shared page, verifies confidentiality, and destroys it.
func ACEDemo() (host, guest []byte, guestBase uint64) {
	host = kernel.BuildACEHost(core.OSBase)
	guest = kernel.BuildCVMGuest(kernel.CVMBase)
	return host, guest, kernel.CVMBase
}

// LoadExtra loads an additional image (an enclave payload, a CVM guest)
// into the system's RAM before running.
func (s *System) LoadExtra(base uint64, img []byte) error {
	return s.Machine.LoadImage(base, img)
}

// ReadMem reads a 64-bit word from the machine's physical memory (for
// collecting demo results).
func (s *System) ReadMem(addr uint64) (uint64, bool) {
	return s.Machine.Bus.Load(addr, 8)
}

// BootTraceKernel builds the phased boot kernel (bootloader, early init,
// idle timer ticks) used by the boot-time and Fig. 3 experiments; it is a
// more realistic payload than the minimal boot kernel.
func BootTraceKernel(idleTicks int) []byte {
	return kernel.BuildBootTrace(core.OSBase, idleTicks)
}
