package govfm_test

import (
	"bytes"
	"encoding/json"
	"testing"

	govfm "govfm"
	"govfm/internal/obs"
)

// Observability acceptance tests: the obs layer must be architecturally
// invisible (identical cycle/instret counts with it on or off — the same
// discipline scripts/verify.sh enforces on the host fast paths), and a
// monitored boot must export well-formed Chrome trace_event JSON with
// per-hart and monitor tracks.

// bootMonitored boots the default gosbi firmware + boot kernel under the
// monitor with offloading, optionally observed.
func bootMonitored(t *testing.T, harts int, ob *obs.Observer) *govfm.System {
	t.Helper()
	sys, err := govfm.New(govfm.Config{
		Harts:      harts,
		Virtualize: true,
		Offload:    true,
		Obs:        ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	halted, reason := sys.Run(0)
	if !halted || reason != "guest-exit-pass" {
		t.Fatalf("halted=%v reason=%q", halted, reason)
	}
	return sys
}

func TestObsInvisible(t *testing.T) {
	plain := bootMonitored(t, 2, nil)
	ob := obs.New(obs.Options{})
	observed := bootMonitored(t, 2, ob)

	for i := range plain.Machine.Harts {
		pc, oc := plain.Machine.HartCycles(i), observed.Machine.HartCycles(i)
		if pc != oc {
			t.Errorf("hart%d cycles: plain=%d observed=%d", i, pc, oc)
		}
		pi, oi := plain.Machine.Harts[i].Instret, observed.Machine.Harts[i].Instret
		if pi != oi {
			t.Errorf("hart%d instret: plain=%d observed=%d", i, pi, oi)
		}
	}

	// And the metrics agree with the architectural counters they mirror.
	snap := ob.Metrics.Snapshot()
	if got := snap.Values["hart0.cycles"]; got != observed.Machine.HartCycles(0) {
		t.Errorf("hart0.cycles metric %d != machine %d", got, observed.Machine.HartCycles(0))
	}
	if snap.Values["mon.world_switches"] == 0 {
		t.Error("monitored boot recorded no world switches")
	}
	if snap.Values["sim.decode.hit_pct"] == 0 {
		t.Error("fast-path boot reports zero decode-cache hit rate")
	}
	if snap.Values["sim.tlb.hit_pct"] == 0 {
		t.Error("paging boot phase reports zero TLB hit rate")
	}
}

// TestBootChromeTrace is the golden-shape test for the exporter on a real
// boot: the JSON parses, timestamps are monotonic per thread, B/E pairs
// match, and both per-hart and monitor tracks are present.
func TestBootChromeTrace(t *testing.T) {
	ob := obs.New(obs.Options{})
	bootMonitored(t, 2, ob)

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, ob.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  int     `json:"tid"`
			TS   float64 `json:"ts"`
			S    string  `json:"s"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	threads := map[string]bool{}
	lastTS := map[int]float64{}
	depth := map[int]int{}
	for _, e := range trace.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "thread_name" {
				threads[e.Args.Name] = true
			}
			continue
		}
		if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
			t.Fatalf("tid %d: timestamp %v < %v", e.TID, e.TS, prev)
		}
		lastTS[e.TID] = e.TS
		switch e.Ph {
		case "B":
			depth[e.TID]++
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("tid %d: E without matching B", e.TID)
			}
			if e.Name == "" {
				t.Fatalf("tid %d: E without a name", e.TID)
			}
		case "i":
			if e.S != "t" {
				t.Fatalf("instant %q: scope %q, want thread scope", e.Name, e.S)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %d: %d unclosed span(s)", tid, d)
		}
	}
	for _, want := range []string{"monitor", "hart0", "hart1", "hart0-world"} {
		if !threads[want] {
			t.Errorf("missing %q track (have %v)", want, threads)
		}
	}
}
