package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	var out, errw bytes.Buffer

	if code := run([]string{"-profile", "bogus"}, &out, &errw); code != 2 {
		t.Errorf("unknown profile: exit %d, want 2", code)
	}
	if code := run([]string{"-bad-flag"}, &out, &errw); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}

	out.Reset()
	code := run([]string{"-profile", "vf2", "-seed", "3", "-budget", "2000",
		"-repros", t.TempDir()}, &out, &errw)
	if code != 0 {
		t.Errorf("short clean run: exit %d, want 0\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "0 divergence(s)") {
		t.Errorf("summary missing: %s", out.String())
	}
}

func TestRunSchedEquivMode(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-profile", "vf2", "-seed", "9", "-sched", "both",
		"-equiv-cases", "40"}, &out, &errw)
	if code != 0 {
		t.Errorf("sched mode: exit %d, want 0\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "sched-equivalence: 40 cases") {
		t.Errorf("sched summary missing: %s", out.String())
	}
	if code := run([]string{"-sched", "bogus"}, &out, &errw); code != 2 {
		t.Errorf("bad -sched: exit %d, want 2", code)
	}
}

func TestRunInjectMode(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-profile", "vf2", "-seed", "5", "-inject", "6"}, &out, &errw)
	if code != 0 {
		t.Errorf("inject mode: exit %d, want 0\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "inject: cases=6") {
		t.Errorf("inject summary missing: %s", out.String())
	}
}
