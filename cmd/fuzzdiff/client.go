package main

import (
	"fmt"
	"io"
	"time"

	"govfm/internal/vfmd"
)

// runServerCampaign runs the campaign through a vfmd fleet server
// instead of in-process: the server shards the campaign across its
// worker pool and spawns cases from shared post-boot snapshots, so
// client processes stay thin. kind is "fuzz" or "chaos".
func runServerCampaign(base, kind string, profiles []string, seed int64, budget int, out, errw io.Writer) int {
	c := vfmd.NewClient(base)
	t0 := time.Now()
	j, err := c.Campaign(vfmd.CampaignSpec{
		Kind:     kind,
		Profiles: profiles,
		Seed:     seed,
		Budget:   budget,
	})
	if err != nil {
		fmt.Fprintf(errw, "%s: server: %v\n", kind, err)
		return 2
	}
	fmt.Fprintf(out, "campaign job %s queued on %s\n", j.ID, base)
	j, err = c.WaitJob(j.ID)
	if err != nil {
		fmt.Fprintf(errw, "%s: server: %v\n", kind, err)
		return 2
	}
	res, err := vfmd.CampaignResultOf(j)
	if err != nil {
		fmt.Fprintf(errw, "%s: server: %v\n", kind, err)
		return 2
	}
	for _, line := range res.Lines {
		fmt.Fprintln(out, line)
	}
	fmt.Fprintf(out, "server campaign (%s): %d shard(s), %d cases, %d findings in %.1fs\n",
		res.Kind, res.Shards, res.Cases, res.Findings, time.Since(t0).Seconds())
	if retries, dropped := c.Stats(); retries > 0 || dropped > 0 {
		fmt.Fprintf(out, "client robustness: %d transient retries, %d calls dropped\n", retries, dropped)
	}
	if res.Findings > 0 {
		return 1
	}
	return 0
}
