// Command fuzzdiff runs the differential lockstep fuzzer: randomized RV64
// machine states and instruction streams executed simultaneously on a bare
// simulated hart and a monitor-virtualized hart, with both checked against
// the architectural reference model after every retired instruction. Any
// disagreement is a finding; findings are minimized and written out as
// self-contained reproducer test files.
//
// Usage:
//
//	go run ./cmd/fuzzdiff -smoke                 # fixed-seed CI gate
//	go run ./cmd/fuzzdiff -budget 1000000        # long fuzzing run
//	go run ./cmd/fuzzdiff -profile vf2 -seed 7   # one profile, chosen seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"govfm/internal/verif/fuzz"
)

var profileAlias = map[string][]string{
	"vf2":  {"visionfive2"},
	"p550": {"p550"},
	"all":  {"visionfive2", "p550"},
}

func main() {
	var (
		seed    = flag.Int64("seed", 1, "fuzzer seed")
		budget  = flag.Int("budget", 200_000, "total lockstep steps per profile")
		smoke   = flag.Bool("smoke", false, "fixed-seed smoke run: 100k+ steps across both profiles, used as a CI gate")
		profile = flag.String("profile", "all", "platform profile: vf2, p550, or all")
		repros  = flag.String("repros", "internal/verif/fuzz/testdata/repros", "directory for minimized reproducer files")
	)
	flag.Parse()

	profiles, ok := profileAlias[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "fuzzdiff: unknown profile %q (want vf2, p550, or all)\n", *profile)
		os.Exit(2)
	}
	if *smoke {
		*seed = 1
		*budget = 60_000 // per profile; ≥100k total across both
		profiles = profileAlias["all"]
	}

	totalFindings := 0
	totalSteps := 0
	start := time.Now()
	for i, p := range profiles {
		f, err := fuzz.NewFuzzer([]string{p}, *seed+int64(i))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzdiff: %v\n", err)
			os.Exit(2)
		}
		t0 := time.Now()
		findings := f.RunBudget(*budget, 5)
		dt := time.Since(t0)
		fmt.Printf("%-12s seed=%d cases=%d steps=%d coverage=%d corpus=%d findings=%d (%.1fs, %.0f steps/s)\n",
			p, *seed+int64(i), f.Cases, f.Steps, f.Coverage(), f.CorpusSize(0),
			len(findings), dt.Seconds(), float64(f.Steps)/dt.Seconds())
		totalSteps += f.Steps
		totalFindings += len(findings)
		for _, fd := range findings {
			fmt.Printf("\n=== DIVERGENCE (%s) ===\n%s\n", p, fd)
			path, err := fuzz.WriteRepro(*repros, fd)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fuzzdiff: writing reproducer: %v\n", err)
				continue
			}
			fmt.Printf("minimized reproducer written to %s\n", path)
		}
	}
	fmt.Printf("total: %d lockstep steps across %d profile(s) in %.1fs, %d divergence(s)\n",
		totalSteps, len(profiles), time.Since(start).Seconds(), totalFindings)
	if totalFindings > 0 {
		os.Exit(1)
	}
}
