// Command fuzzdiff runs the differential lockstep fuzzer: randomized RV64
// machine states and instruction streams executed simultaneously on a bare
// simulated hart and a monitor-virtualized hart, with both checked against
// the architectural reference model after every retired instruction. Any
// disagreement is a finding; findings are minimized and written out as
// self-contained reproducer test files.
//
// With -inject N the same generator feeds the fault-injection engine
// instead of the lockstep comparator: N randomized cases run with
// containment armed while faults are injected, and the robustness contract
// (no escaped panics, every monitor halt leaves a fault record) is
// checked.
//
// Usage:
//
//	go run ./cmd/fuzzdiff -smoke                 # fixed-seed CI gate
//	go run ./cmd/fuzzdiff -budget 1000000        # long fuzzing run
//	go run ./cmd/fuzzdiff -profile vf2 -seed 7   # one profile, chosen seed
//	go run ./cmd/fuzzdiff -inject 50             # fault-injection mode
//	go run ./cmd/fuzzdiff -sched both            # seq-vs-par scheduler equivalence
//	go run ./cmd/fuzzdiff -hext -smoke           # hypervisor-extension lockstep gate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"govfm/internal/verif"
	"govfm/internal/verif/fuzz"
)

var profileAlias = map[string][]string{
	"vf2":  {"visionfive2"},
	"p550": {"p550"},
	"all":  {"visionfive2", "p550"},
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the whole program; it returns the process exit code so tests can
// drive it directly. 0 = clean, 1 = findings or injection failures,
// 2 = usage/setup error. The exit code is derived from the raw finding
// count, not the minimized list — minimization caps and failures must
// never turn a red run green.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("fuzzdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		seed     = fs.Int64("seed", 1, "fuzzer seed")
		budget   = fs.Int("budget", 200_000, "total lockstep steps per profile")
		smoke    = fs.Bool("smoke", false, "fixed-seed smoke run: 100k+ steps across both profiles, used as a CI gate")
		profile  = fs.String("profile", "all", "platform profile: vf2, p550, or all")
		repros   = fs.String("repros", "internal/verif/fuzz/testdata/repros", "directory for minimized reproducer files")
		injectN  = fs.Int("inject", 0, "fault-injection mode: run N randomized cases with containment armed instead of lockstep fuzzing")
		fastpath = fs.String("fastpath", "on", "host acceleration caches: on, off, or both (both = equivalence mode, every case run fast and slow and compared)")
		equivN   = fs.Int("equiv-cases", 1000, "cases per profile in -fastpath=both and -sched=both equivalence modes")
		sched    = fs.String("sched", "", "scheduler equivalence: both = every multi-hart case run under the sequential and parallel schedulers and compared")
		sb       = fs.String("superblock", "", "superblock equivalence: both = every case run on the interpreter, the fast path, and the superblock tier and compared")
		forkN    = fs.Int("fork", 0, "fork-equivalence mode: run N cases per profile, each forked mid-run and compared bit-for-bit against a cold replay, swept across schedulers and fastpath settings")
		hext     = fs.Bool("hext", false, "hypervisor-extension mode: H-biased lockstep fuzzing on the H-capable profiles (guest V-states, hfence, VS CSRs)")
		hextN    = fs.Int("hext-cases", 500, "cases per profile in -hext mode")
		teeN     = fs.Int("tee", 0, "TEE lifecycle mode: run N shadow-model fuzz cases per profile over the ACE confidential-compute FSM instead of lockstep fuzzing")
		server   = fs.String("server", "", "run the fuzz campaign through a vfmd fleet server at this base URL (e.g. http://127.0.0.1:9400) instead of in-process")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	profiles, ok := profileAlias[*profile]
	if !ok {
		fmt.Fprintf(errw, "fuzzdiff: unknown profile %q (want vf2, p550, or all)\n", *profile)
		return 2
	}
	if *smoke {
		*seed = 1
		*budget = 60_000 // per profile; ≥100k total across both
		profiles = profileAlias["all"]
	}

	if *hext {
		if *profile == "all" {
			profiles = []string{"p550"} // the H-capable profile
		}
		return runHext(profiles, *seed, *hextN, *repros, out, errw)
	}

	if *teeN > 0 {
		return runTEE(profiles, *seed, *teeN, out, errw)
	}

	if *forkN > 0 {
		return runForkEquiv(profiles, *seed, *forkN, out, errw)
	}

	if *server != "" {
		return runServerCampaign(*server, "fuzz", profiles, *seed, *budget, out, errw)
	}

	if *injectN > 0 {
		return runInject(profiles, *seed, *injectN, out, errw)
	}

	switch *sched {
	case "":
	case "both":
		return runSchedEquiv(profiles, *seed, *equivN, out, errw)
	default:
		fmt.Fprintf(errw, "fuzzdiff: unknown -sched %q (want both)\n", *sched)
		return 2
	}

	switch *sb {
	case "":
	case "both":
		return runSBEquiv(profiles, *seed, *equivN, out, errw)
	default:
		fmt.Fprintf(errw, "fuzzdiff: unknown -superblock %q (want both)\n", *sb)
		return 2
	}

	switch *fastpath {
	case "on", "off":
		fuzz.DefaultFastPath = *fastpath == "on"
	case "both":
		return runEquiv(profiles, *seed, *equivN, out, errw)
	default:
		fmt.Fprintf(errw, "fuzzdiff: unknown -fastpath %q (want on, off, or both)\n", *fastpath)
		return 2
	}

	rawFindings := 0
	totalSteps := 0
	start := time.Now()
	for i, p := range profiles {
		f, err := fuzz.NewFuzzer([]string{p}, *seed+int64(i))
		if err != nil {
			fmt.Fprintf(errw, "fuzzdiff: %v\n", err)
			return 2
		}
		t0 := time.Now()
		findings := f.RunBudget(*budget, 5)
		dt := time.Since(t0)
		fmt.Fprintf(out, "%-12s seed=%d cases=%d steps=%d coverage=%d corpus=%d findings=%d (%.1fs, %.0f steps/s)\n",
			p, *seed+int64(i), f.Cases, f.Steps, f.Coverage(), f.CorpusSize(0),
			len(findings), dt.Seconds(), float64(f.Steps)/dt.Seconds())
		totalSteps += f.Steps
		rawFindings += len(f.Findings)
		for _, fd := range findings {
			fmt.Fprintf(out, "\n=== DIVERGENCE (%s) ===\n%s\n", p, fd)
			path, err := fuzz.WriteRepro(*repros, fd)
			if err != nil {
				fmt.Fprintf(errw, "fuzzdiff: writing reproducer: %v\n", err)
				continue
			}
			fmt.Fprintf(out, "minimized reproducer written to %s\n", path)
		}
	}
	fmt.Fprintf(out, "total: %d lockstep steps across %d profile(s) in %.1fs, %d divergence(s)\n",
		totalSteps, len(profiles), time.Since(start).Seconds(), rawFindings)
	if rawFindings > 0 {
		return 1
	}
	return 0
}

// runHext drives the hypervisor-extension mode: the same three-way
// lockstep comparison as the default mode, but case-denominated and with
// the generator biased toward the H surface — guest (V=1) starting
// states, hfence, VS CSR traffic, dense hedeleg/hvip delegation. Any
// architectural or cycle-count divergence between the native hart, the
// monitor-virtualized hart, and the reference model is a finding.
func runHext(profiles []string, seed int64, cases int, repros string, out, errw io.Writer) int {
	rawFindings := 0
	start := time.Now()
	for i, p := range profiles {
		f, err := fuzz.NewFuzzer([]string{p}, seed+int64(i))
		if err != nil {
			fmt.Fprintf(errw, "fuzzdiff: %v\n", err)
			return 2
		}
		if !f.Engines[0].VirtCfg.HasH {
			fmt.Fprintf(errw, "fuzzdiff: profile %q has no hypervisor extension (use -profile p550)\n", p)
			return 2
		}
		f.Engines[0].HextBias = true
		t0 := time.Now()
		findings := f.RunCases(cases, 5)
		dt := time.Since(t0)
		fmt.Fprintf(out, "%-12s hext: seed=%d cases=%d guest-cases=%d steps=%d coverage=%d findings=%d (%.1fs)\n",
			p, seed+int64(i), f.Cases, f.GuestCases, f.Steps, f.Coverage(), len(findings), dt.Seconds())
		rawFindings += len(f.Findings)
		for _, fd := range findings {
			fmt.Fprintf(out, "\n=== DIVERGENCE (%s) ===\n%s\n", p, fd)
			path, err := fuzz.WriteRepro(repros, fd)
			if err != nil {
				fmt.Fprintf(errw, "fuzzdiff: writing reproducer: %v\n", err)
				continue
			}
			fmt.Fprintf(out, "minimized reproducer written to %s\n", path)
		}
	}
	fmt.Fprintf(out, "hext: %d divergence(s) across %d profile(s) in %.1fs\n",
		rawFindings, len(profiles), time.Since(start).Seconds())
	if rawFindings > 0 {
		return 1
	}
	return 0
}

// runForkEquiv drives the fork-equivalence mode: each case runs a parent,
// forks it mid-run, and compares child and post-fork parent bit-for-bit
// (cycle counters included) against a cold replay of the same trajectory,
// swept across both schedulers and both fastpath settings.
func runForkEquiv(profiles []string, seed int64, cases int, out, errw io.Writer) int {
	t0 := time.Now()
	st, err := verif.RunForkEquivalence(profiles, seed, cases)
	if err != nil {
		fmt.Fprintf(errw, "fuzzdiff: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "fork-equivalence: %d cases, %d steps, %d image pages, %d divergence(s) across %d profile(s) in %.1fs\n",
		st.Cases, st.Steps, st.ForkPages, len(st.Mismatches), len(profiles), time.Since(t0).Seconds())
	for _, m := range st.Mismatches {
		fmt.Fprintf(out, "  DIVERGENCE %s\n", m)
	}
	if len(st.Mismatches) > 0 {
		return 1
	}
	return 0
}

// runTEE drives the TEE lifecycle mode: seeded random operation sequences
// over the ACE confidential-compute FSM, each checked against an
// independent shadow model, the policy's structural invariants, and the
// Dorami monitor wall after every operation.
func runTEE(profiles []string, seed int64, cases int, out, errw io.Writer) int {
	t0 := time.Now()
	rep, err := fuzz.RunTEE(profiles, seed, cases)
	if err != nil {
		fmt.Fprintf(errw, "fuzzdiff: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "tee: %d cases, %d lifecycle ops, %d violations rejected, %d heavy switches, %d failure(s) across %d profile(s) in %.1fs\n",
		rep.Cases, rep.Ops, rep.Violations, rep.HeavySwitches, len(rep.Failures),
		len(profiles), time.Since(t0).Seconds())
	for _, f := range rep.Failures {
		fmt.Fprintf(out, "  FAIL %s\n", f)
	}
	if len(rep.Failures) > 0 {
		return 1
	}
	if rep.Violations == 0 || rep.HeavySwitches == 0 {
		// A TEE sweep that never tripped a guard or crossed the boundary
		// exercised nothing; refuse to count it as a pass.
		fmt.Fprintf(errw, "fuzzdiff: tee sweep exercised no guards (violations=%d, heavy switches=%d)\n",
			rep.Violations, rep.HeavySwitches)
		return 2
	}
	return 0
}

// runInject drives the fault-injection mode across the chosen profiles.
func runInject(profiles []string, seed int64, cases int, out, errw io.Writer) int {
	failed := false
	for i, p := range profiles {
		rep, err := fuzz.RunInjection(p, seed+int64(i), cases)
		if err != nil {
			fmt.Fprintf(errw, "fuzzdiff: %v\n", err)
			return 2
		}
		fmt.Fprintf(out, "%-12s inject: cases=%d steps=%d faults-injected=%d monitor-halts=%d fault-records=%d failures=%d\n",
			p, rep.Cases, rep.Steps, rep.Injected, rep.Halts, rep.Faults, len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Fprintf(out, "  FAIL %s\n", f)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// runSchedEquiv drives the scheduler-equivalence mode: each randomized
// multi-hart case runs under the sequential round-robin and the parallel
// quantum scheduler, and any divergence in per-hart end state (cycle
// counters included) or machine halt state is a failure.
func runSchedEquiv(profiles []string, seed int64, cases int, out, errw io.Writer) int {
	t0 := time.Now()
	st, err := fuzz.RunSchedEquivalence(profiles, seed, cases)
	if err != nil {
		fmt.Fprintf(errw, "fuzzdiff: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "sched-equivalence: %d cases, %d seq steps, %d divergence(s) across %d profile(s) in %.1fs\n",
		st.Cases, st.Steps, len(st.Mismatches), len(profiles), time.Since(t0).Seconds())
	for _, m := range st.Mismatches {
		fmt.Fprintf(out, "  DIVERGENCE %s\n", m)
	}
	if len(st.Mismatches) > 0 {
		return 1
	}
	return 0
}

// runSBEquiv drives the superblock-equivalence mode: each randomized
// single-hart case runs three times from the identical initial state — on
// the plain interpreter, on the fast path without superblocks, and on the
// full stack — under the same scheduler with a live wall clock, and any
// divergence in end state (cycle counters included) is a failure.
func runSBEquiv(profiles []string, seed int64, cases int, out, errw io.Writer) int {
	t0 := time.Now()
	st, err := fuzz.RunSuperblockEquivalence(profiles, seed, cases)
	if err != nil {
		fmt.Fprintf(errw, "fuzzdiff: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "superblock-equivalence: %d cases, %d interp steps, %d sb-retired, %d divergence(s) across %d profile(s) in %.1fs\n",
		st.Cases, st.Steps, st.SBRetired, len(st.Mismatches), len(profiles), time.Since(t0).Seconds())
	for _, m := range st.Mismatches {
		fmt.Fprintf(out, "  DIVERGENCE %s\n", m)
	}
	if len(st.Mismatches) > 0 {
		return 1
	}
	return 0
}

// runEquiv drives the fastpath-equivalence mode: each case runs twice, with
// host caches on and off, and any architectural or cycle-count divergence
// is a failure.
func runEquiv(profiles []string, seed int64, cases int, out, errw io.Writer) int {
	t0 := time.Now()
	st, err := fuzz.RunEquivalence(profiles, seed, cases)
	if err != nil {
		fmt.Fprintf(errw, "fuzzdiff: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "fastpath-equivalence: %d cases, %d lockstep steps, %d divergence(s) across %d profile(s) in %.1fs\n",
		st.Cases, st.Steps, len(st.Mismatches), len(profiles), time.Since(t0).Seconds())
	for _, m := range st.Mismatches {
		fmt.Fprintf(out, "  DIVERGENCE %s\n", m)
	}
	if len(st.Mismatches) > 0 {
		return 1
	}
	return 0
}
