// Command rvsim runs a raw binary image on the bare machine simulator —
// no monitor, no default firmware — starting in M-mode at the image base.
// It is the debugging workhorse for firmware and kernel images. With no
// -image it instead boots the built-in gosbi firmware and default boot
// kernel under the monitor — the quickest way to a fully populated trace
// (per-hart tracks plus the monitor track).
//
// Usage:
//
//	rvsim [-image prog.bin] [-base 0x80100000] [-platform visionfive2]
//	      [-harts 1] [-max-steps N] [-trace] [-fastpath=true] [-superblock=true]
//	      [-sched seq] [-quantum 1024]
//	      [-trace-out boot.json] [-metrics-out metrics.json] [-metrics]
//	      [-cpuprofile prof.out] [-memprofile heap.out]
//
// -trace-out writes the run's structured events as Chrome trace_event
// JSON (open in Perfetto); -metrics-out writes a metrics snapshot as
// JSON; -metrics dumps the snapshot as text on exit. All three record
// simulated time only — cycle counts are unchanged by enabling them.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	govfm "govfm"
	"govfm/internal/core"
	"govfm/internal/hart"
	"govfm/internal/obs"
	"govfm/internal/rv"
)

func main() {
	image := flag.String("image", "", "binary image file")
	base := flag.Uint64("base", core.FirmwareBase, "load/entry address")
	platform := flag.String("platform", "visionfive2", "hardware profile")
	harts := flag.Int("harts", 1, "core count")
	maxSteps := flag.Uint64("max-steps", 100_000_000, "step budget")
	traceTraps := flag.Bool("trace", false, "print every trap")
	fastpath := flag.Bool("fastpath", true, "enable host acceleration caches")
	superblock := flag.Bool("superblock", true, "enable the superblock translation tier (requires -fastpath)")
	sched := flag.String("sched", "seq", "execution scheduler: seq (round-robin) or par (quantum-parallel)")
	quantum := flag.Uint64("quantum", 0, "parallel scheduler slice length in cycles (0 = default)")
	traceOut := flag.String("trace-out", "", "write Chrome trace_event JSON to this file")
	metricsOut := flag.String("metrics-out", "", "write a metrics snapshot (JSON) to this file")
	metricsDump := flag.Bool("metrics", false, "print a metrics dump on exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var ob *obs.Observer
	if *traceOut != "" || *metricsOut != "" || *metricsDump {
		ob = obs.New(obs.Options{})
	}

	var m *hart.Machine
	if *image == "" {
		// No image: boot the built-in monitored gosbi system.
		sys, err := govfm.New(govfm.Config{
			Platform:   govfm.Platform(*platform),
			Harts:      *harts,
			Virtualize: true,
			Offload:    true,
			Obs:        ob,
			Sched:      *sched,
			Quantum:    *quantum,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
			os.Exit(1)
		}
		m = sys.Machine
	} else {
		img, err := os.ReadFile(*image)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
			os.Exit(1)
		}
		mk, ok := hart.Profiles()[*platform]
		if !ok {
			fmt.Fprintf(os.Stderr, "rvsim: unknown platform %q\n", *platform)
			os.Exit(2)
		}
		cfg := mk()
		cfg.Harts = *harts
		m, err = hart.NewMachine(cfg, core.DramSize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
			os.Exit(1)
		}
		if err := m.LoadImage(*base, img); err != nil {
			fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
			os.Exit(1)
		}
		if ob != nil {
			m.AttachObs(ob)
		}
		m.Reset(*base)
	}
	kind, err := hart.ParseSched(*sched)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
		os.Exit(2)
	}
	m.Sched = kind
	m.Quantum = *quantum
	if *traceTraps {
		for _, h := range m.Harts {
			h.OnTrap = func(t hart.TrapInfo) {
				fmt.Printf("trap hart%d cycle=%d %s epc=%#x tval=%#x %v->%v\n",
					t.Hart, t.Cycle, rv.CauseString(t.Cause), t.EPC, t.Tval,
					t.FromMode, t.ToMode)
			}
		}
	}
	m.SetFastPath(*fastpath)
	m.SetSuperblock(*superblock)
	steps, halted := m.Run(*maxSteps)

	fmt.Printf("console:\n%s\n", m.Uart.Output())
	ok2, reason := m.Halted()
	fmt.Printf("steps=%d halted=%v reason=%q\n", steps, ok2, reason)
	for _, h := range m.Harts {
		fmt.Printf("%v instret=%d\n", h, h.Instret)
	}
	if ob != nil {
		if *metricsDump {
			fmt.Printf("metrics:\n%s", ob.Metrics.Dump())
		}
		if *metricsOut != "" {
			if err := ob.WriteMetricsFile(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
			}
		}
		if *traceOut != "" {
			if err := ob.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
			}
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
		} else {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rvsim: %v\n", err)
			}
			f.Close()
		}
	}
	if !halted || reason != "guest-exit-pass" {
		pprof.StopCPUProfile() // flush before the non-deferred exit
		os.Exit(1)
	}
}
