// Command vfmd serves the virtual-firmware-monitor fleet over HTTP/JSON:
// boot machines, snapshot them into copy-on-write images, spawn children
// from an image (monitor state forked alongside), run step budgets on a
// worker pool, and pull per-machine metrics and Perfetto traces.
//
// Usage:
//
//	go run ./cmd/vfmd                      # listen on 127.0.0.1:9400
//	go run ./cmd/vfmd -addr :8080 -workers 8
//
// Quick start against a running server:
//
//	curl -X POST localhost:9400/v1/machines \
//	     -d '{"profile":"visionfive2","firmware":"gosbi","virtualize":true,"policy":"sandbox","warmup_steps":4000}'
//	curl -X POST localhost:9400/v1/machines/m1/snapshot
//	curl -X POST localhost:9400/v1/snapshots/s1/spawn -d '{"count":4}'
//	curl -X POST localhost:9400/v1/machines/m2/run -d '{"steps":1000000}'
//	curl    localhost:9400/v1/jobs/j1?wait=1
//	curl    localhost:9400/v1/machines/m2/metrics
//	curl    localhost:9400/v1/machines/m2/trace > trace.json   # open in Perfetto
//
// Campaign clients: `fuzzdiff -server URL` and `chaos -server URL` run
// their campaigns through the fleet instead of in-process.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
)

import "govfm/internal/vfmd"

func main() { os.Exit(run()) }

func run() int {
	var (
		addr    = flag.String("addr", "127.0.0.1:9400", "listen address")
		workers = flag.Int("workers", runtime.NumCPU(), "worker-pool width for run/campaign jobs")
	)
	flag.Parse()

	fleet := vfmd.NewFleet(*workers)
	defer fleet.Close()

	fmt.Printf("vfmd: serving fleet API on http://%s (%d workers)\n", *addr, *workers)
	if err := http.ListenAndServe(*addr, vfmd.NewServer(fleet)); err != nil {
		fmt.Fprintf(os.Stderr, "vfmd: %v\n", err)
		return 1
	}
	return 0
}
