// Command vfmd serves the virtual-firmware-monitor fleet over HTTP/JSON:
// boot machines, snapshot them into copy-on-write images, spawn children
// from an image (monitor state forked alongside), run step budgets on a
// supervised worker pool, and pull per-machine metrics and Perfetto
// traces. The pool is a supervision boundary: jobs carry wall-clock
// deadlines, panicking simulations become structured fault reports, the
// bounded queue sheds load with 429s, and machines whose jobs keep dying
// are quarantined and respawned from their originating snapshot.
//
// Usage:
//
//	go run ./cmd/vfmd                      # listen on 127.0.0.1:9400
//	go run ./cmd/vfmd -addr :8080 -workers 8
//	go run ./cmd/vfmd -deadline 30s -queue 512 -strikes 3 -respawns 3
//
// Quick start against a running server:
//
//	curl -X POST localhost:9400/v1/machines \
//	     -d '{"profile":"visionfive2","firmware":"gosbi","virtualize":true,"policy":"sandbox","warmup_steps":4000}'
//	curl -X POST localhost:9400/v1/machines/m1/snapshot
//	curl -X POST localhost:9400/v1/snapshots/s1/spawn -d '{"count":4}'
//	curl -X POST localhost:9400/v1/machines/m2/run -d '{"steps":1000000,"wall_ms":30000}'
//	curl    localhost:9400/v1/jobs/j1?wait=1\&timeout_ms=30000
//	curl    localhost:9400/v1/fleet                            # health: queue, quarantines, faults
//	curl    localhost:9400/v1/machines/m2/metrics
//	curl    localhost:9400/v1/machines/m2/trace > trace.json   # open in Perfetto
//
// Campaign clients: `fuzzdiff -server URL` and `chaos -server URL` run
// their campaigns through the fleet instead of in-process. SIGINT/SIGTERM
// drain gracefully: intake stops, in-flight jobs get the -drain grace to
// finish, stragglers are cancelled cooperatively and force-failed, so
// every accepted job still reaches a terminal state.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

import "govfm/internal/vfmd"

func main() { os.Exit(run()) }

func run() int {
	var (
		addr    = flag.String("addr", "127.0.0.1:9400", "listen address")
		workers = flag.Int("workers", runtime.NumCPU(), "worker-pool width for run/campaign jobs")

		queueCap = flag.Int("queue", 256, "bounded job-queue capacity; submissions beyond it are load-shed with 429")
		deadline = flag.Duration("deadline", 0, "default per-job wall-clock budget (0 = unbounded); jobs may override with wall_ms")
		maxSteps = flag.Uint64("max-steps", 0, "admission cap on a run job's step budget (0 = unbounded)")
		strikes  = flag.Int("strikes", 3, "strike threshold that quarantines a machine")
		respawns = flag.Int("respawns", 3, "max respawns of a quarantined machine from its originating snapshot")
		drain    = flag.Duration("drain", 5*time.Second, "graceful-shutdown grace before cooperative cancellation kicks in")
	)
	flag.Parse()

	fleet := vfmd.NewFleetWith(vfmd.FleetOptions{
		Workers:           *workers,
		QueueCap:          *queueCap,
		DefaultWall:       *deadline,
		MaxSteps:          *maxSteps,
		QuarantineStrikes: *strikes,
		RespawnCap:        *respawns,
		DrainGrace:        *drain,
	})

	srv := &http.Server{Addr: *addr, Handler: vfmd.NewServer(fleet)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	fmt.Printf("vfmd: serving fleet API on http://%s (%d workers, queue %d, deadline %v)\n",
		*addr, *workers, *queueCap, *deadline)
	select {
	case err := <-errc:
		fleet.Close()
		fmt.Fprintf(os.Stderr, "vfmd: %v\n", err)
		return 1
	case sig := <-sigc:
		fmt.Printf("vfmd: %v — draining (grace %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		srv.Shutdown(ctx)
		cancel()
		fleet.Close()
		fmt.Println("vfmd: drained, every job terminal")
		return 0
	}
}
