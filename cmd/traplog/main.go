// Command traplog regenerates the paper's Figure 3: the distribution of
// M-mode trap causes over the boot sequence, windowed over simulated time,
// together with the headline numbers — the share of the five offloadable
// causes and the residual world-switch rate with fast-path offloading.
//
// Usage:
//
//	traplog [-platform visionfive2] [-window-ticks 10000]
package main

import (
	"flag"
	"fmt"
	"os"

	"govfm/internal/bench"
	"govfm/internal/hart"
)

func main() {
	platform := flag.String("platform", "visionfive2", "hardware profile")
	window := flag.Uint64("window-ticks", 10_000, "window size in mtime ticks")
	flag.Parse()

	mk, ok := hart.Profiles()[*platform]
	if !ok {
		fmt.Fprintf(os.Stderr, "traplog: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	res, err := bench.Fig3(mk, *window)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traplog: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
	fmt.Printf("\ntotals:\n%s", res.Collector.Format())
	fmt.Printf("\npaper reference: five causes = 99.98%% of traps, " +
		"5500 traps/s during boot, 1.17 world-switches/s with offload\n")
	fmt.Printf("measured:        five causes = %.2f%%, %.0f traps/s, "+
		"%.2f world-switches/s with offload\n",
		100*res.TopShare, res.NativeTrapRate, res.WorldSwitchRate)
}
