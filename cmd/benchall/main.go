// Command benchall regenerates every table and figure of the paper's
// evaluation section on the simulated platforms and prints them in order,
// with the paper's reference numbers alongside for comparison. Expect a
// few minutes of runtime for the full sweep.
//
// Usage:
//
//	benchall [-only fig3,table4,table5,fig10,fig11,fig12,fig13,fig14,boot,ablation,rva23,simhost]
//	         [-simhost-out BENCH_simhost.json] [-cpuprofile f] [-memprofile f]
//	         [-simhost-baseline BENCH_simhost.json] [-max-regress 30]
//
// -simhost-baseline compares the measured simhost geomean speedup against
// a checked-in baseline report and exits nonzero if it regressed by more
// than -max-regress percent — the CI guard against silently losing the
// host fast paths.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"govfm/internal/bench"
	"govfm/internal/hart"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of experiments")
	simhostOut := flag.String("simhost-out", "BENCH_simhost.json", "simhost JSON output path")
	simhostBaseline := flag.String("simhost-baseline", "", "baseline simhost JSON to guard against regressions")
	maxRegress := flag.Float64("max-regress", 30, "max %% geomean-speedup regression vs. the baseline")
	superblock := flag.Bool("superblock", true, "enable the superblock translation tier in the full-stack simhost measurement")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			}
		}()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}

	if sel("fig3") {
		fmt.Println("================================================================")
		res, err := bench.Fig3(hart.VisionFive2, 10_000)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Format())
		fmt.Println("paper: five causes 99.98%; 5500 traps/s; 1.17 world-switches/s")
		fmt.Println()
	}

	if sel("table4") {
		fmt.Println("================================================================")
		fmt.Println("Table 4: Overhead of Miralis operations in cycles")
		fmt.Printf("%-14s %12s %14s\n", "platform", "emulation", "world switch")
		for _, mk := range []func() *hart.Config{hart.VisionFive2, hart.PremierP550} {
			r, err := bench.Table4(mk)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-14s %12.0f %14.0f\n", r.Platform, r.EmulationCycles, r.WorldSwitchCycles)
		}
		fmt.Println("paper: VF2 483 / 2704; P550 271 / 4098")
		fmt.Println()
	}

	if sel("table5") {
		fmt.Println("================================================================")
		fmt.Println("Table 5: Cost of timer read and IPI (ns)")
		r, err := bench.Table5(hart.VisionFive2)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-20s %10s %10s\n", "", "read time", "IPI")
		for _, mode := range bench.Modes {
			fmt.Printf("%-20s %10.0f %10.0f\n", mode, r.ReadTime[mode], r.IPI[mode])
		}
		fmt.Println("paper (VF2): native 288ns/3.96µs; miralis 208ns/3.65µs; no-offload 7.26µs/39.8µs")
		fmt.Println("(our IPI is a same-core round trip; the paper measures cross-core delivery)")
		fmt.Println()
	}

	if sel("fig10") {
		fmt.Println("================================================================")
		res, err := bench.Fig10(hart.VisionFive2)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Format())
		fmt.Println("paper: miralis ≈ native; no-offload ≈ 1.9% average overhead")
		fmt.Println()
	}

	if sel("fig11") {
		fmt.Println("================================================================")
		res, err := bench.Fig11(hart.VisionFive2)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Format())
		fmt.Println("paper: miralis ≥ native (write slightly better); no-offload ≈ 10.6% down")
		fmt.Println()
	}

	if sel("fig12") {
		fmt.Println("================================================================")
		res, err := bench.Fig12(hart.VisionFive2)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Format())
		fmt.Println("paper: miralis ≤ native below p95 (263 vs 279 ns median); no-offload ≈ 2x")
		fmt.Println()
	}

	if sel("fig13") {
		fmt.Println("================================================================")
		for _, mk := range []func() *hart.Config{hart.VisionFive2, hart.PremierP550} {
			res, err := bench.Fig13(mk)
			if err != nil {
				fail(err)
			}
			fmt.Print(res.Format())
		}
		fmt.Println("paper: miralis up to +7.6%/+1.2% (VF2/P550) on network loads;")
		fmt.Println("       no-offload up to 259% overhead on Redis (P550)")
		fmt.Println()
	}

	if sel("fig14") {
		fmt.Println("================================================================")
		res, err := bench.Fig14(hart.VisionFive2)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Format())
		fmt.Println("paper: ≈1% average enclave overhead on RV8")
		fmt.Println()
	}

	if sel("boot") {
		fmt.Println("================================================================")
		res, err := bench.BootTime(hart.VisionFive2)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Format())
		fmt.Println("paper: 48.0s vs 47.5s native (≈1%); 61.3s without offload (≈29%)")
		fmt.Println()
	}

	if sel("ablation") {
		fmt.Println("================================================================")
		res, err := bench.OffloadAblation(hart.VisionFive2)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Format())
		fmt.Println("each fast path contributes in proportion to its trap share (§3.4)")
		fmt.Println()
	}

	if sel("rva23") {
		fmt.Println("================================================================")
		res, err := bench.RVA23Ablation()
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Format())
		fmt.Println("paper (§3.4, §8.3): hardware time CSR + Sstc remove the need for")
		fmt.Println("fast-path offloading on RVA23-class CPUs")
		fmt.Println()
	}

	if sel("simhost") {
		fmt.Println("================================================================")
		fmt.Println("Simulator host throughput: interpreter vs. fast path vs. superblocks")
		fmt.Printf("%-14s %-18s %10s %9s %9s %9s %8s %6s %6s %6s\n",
			"platform", "workload", "instret", "MIPS-off", "MIPS-fast", "MIPS-on", "speedup", "tlb%", "dec%", "sb%")
		var all []*bench.SimHostResult
		for _, mk := range []func() *hart.Config{hart.VisionFive2, hart.PremierP550} {
			res, err := bench.SimHost(mk, *superblock)
			if err != nil {
				fail(err)
			}
			for _, r := range res {
				fmt.Printf("%-14s %-18s %10d %9.2f %9.2f %9.2f %7.2fx %5d%% %5d%% %5d%%\n",
					r.Platform, r.Workload, r.Instret, r.MIPSOff, r.MIPSFast, r.MIPSOn, r.Speedup,
					r.TLBHitPct, r.DecodeHitPct, r.SBRetiredPct)
			}
			all = append(all, res...)
		}
		geomean := bench.GeomeanSpeedup(all)
		fmt.Printf("geomean speedup: %.2fx (simulated cycles bit-identical in every row)\n", geomean)

		fmt.Println()
		fmt.Println("Scheduler scaling: sequential round-robin vs. quantum-parallel")
		fmt.Printf("%-14s %6s %10s %9s %9s %8s\n",
			"platform", "harts", "steps", "MIPS-seq", "MIPS-par", "speedup")
		scale, err := bench.SchedScale(hart.VisionFive2, []int{1, 2, 4})
		if err != nil {
			fail(err)
		}
		for _, r := range scale {
			fmt.Printf("%-14s %6d %10d %9.2f %9.2f %7.2fx\n",
				r.Platform, r.Harts, r.Steps, r.MIPSSeq, r.MIPSPar, r.Speedup)
		}
		fmt.Println("(per-hart cycle counters asserted bit-identical between schedulers)")

		fmt.Println()
		fmt.Println("Fork latency: COW spawn-from-snapshot vs. cold boot (200-case campaign)")
		fmt.Printf("%-14s %6s %12s %12s %12s %8s\n",
			"platform", "cases", "spawn-ns", "fork-c/s", "cold-c/s", "speedup")
		fork, err := bench.ForkLatency(hart.VisionFive2, 200)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-14s %6d %12d %12.0f %12.0f %7.2fx\n",
			fork.Platform, fork.Cases, fork.SpawnNsPerCase,
			fork.ForkCasesPerSec, fork.ColdCasesPerSec, fork.Speedup)
		fmt.Printf("(shared image %d pages; every case must still finish with guest-exit-pass)\n",
			fork.ImagePages)

		if err := writeSimHostJSON(*simhostOut, all, scale, fork); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *simhostOut)
		if *simhostBaseline != "" {
			if err := checkSimHostBaseline(*simhostBaseline, geomean, *maxRegress); err != nil {
				fail(err)
			}
		}
		fmt.Println()
	}
}

// checkSimHostBaseline fails if the measured geomean speedup fell more
// than maxRegress percent below the checked-in baseline's.
func checkSimHostBaseline(path string, geomean, maxRegress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base struct {
		GeomeanSpeedup float64 `json:"geomean_speedup"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.GeomeanSpeedup <= 0 {
		return fmt.Errorf("baseline %s: missing geomean_speedup", path)
	}
	floor := base.GeomeanSpeedup * (1 - maxRegress/100)
	if geomean < floor {
		return fmt.Errorf("simhost geomean speedup %.2fx regressed >%.0f%% vs. baseline %.2fx (floor %.2fx)",
			geomean, maxRegress, base.GeomeanSpeedup, floor)
	}
	fmt.Printf("baseline check: %.2fx vs. baseline %.2fx (floor %.2fx) ok\n",
		geomean, base.GeomeanSpeedup, floor)
	return nil
}

// writeSimHostJSON emits the simhost results as a JSON report for the
// repository's BENCH_simhost.json artifact. The sched_scale and fork
// sections are informational and deliberately outside the
// geomean_speedup basis the -simhost-baseline guard reads.
func writeSimHostJSON(path string, results []*bench.SimHostResult, scale []*bench.SchedScaleResult, fork *bench.ForkLatencyResult) error {
	report := struct {
		Note           string                    `json:"note"`
		GOOS           string                    `json:"goos"`
		GOARCH         string                    `json:"goarch"`
		NumCPU         int                       `json:"num_cpu"`
		GeomeanSpeedup float64                   `json:"geomean_speedup"`
		Results        []*bench.SimHostResult    `json:"results"`
		SchedScale     []*bench.SchedScaleResult `json:"sched_scale"`
		Fork           *bench.ForkLatencyResult  `json:"fork"`
	}{
		Note: "host throughput across three execution tiers: interpreter (off), " +
			"acceleration caches (fast), and caches + superblock translation (on); " +
			"cycles/instret are asserted bit-identical between all tiers; " +
			"sched_scale compares the sequential and quantum-parallel schedulers; " +
			"fork compares COW spawn-from-snapshot against cold boot per campaign case",
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		GeomeanSpeedup: bench.GeomeanSpeedup(results),
		Results:        results,
		SchedScale:     scale,
		Fork:           fork,
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
