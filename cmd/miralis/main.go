// Command miralis boots a firmware (and, for SBI firmware, a guest kernel)
// on the simulated platform, optionally under the virtual firmware
// monitor, and reports the run's outcome, console output, and monitor
// statistics.
//
// Usage:
//
//	miralis [flags]
//
//	-platform visionfive2|p550|rva23   hardware profile (default visionfive2)
//	-firmware gosbi|minsbi|rtos        vendor firmware (default gosbi)
//	-native                            run the firmware in physical M-mode
//	-no-offload                        disable fast-path offloading
//	-policy none|sandbox|keystone|ace  isolation policy (default sandbox)
//	-harts N                           core count override
//	-max-steps N                       step budget (default 2e9)
//	-trace-out FILE                    write Chrome trace_event JSON (Perfetto)
//	-metrics-out FILE                  write a metrics snapshot as JSON
//	-metrics                           print a metrics dump on exit
package main

import (
	"flag"
	"fmt"
	"os"

	govfm "govfm"
	"govfm/internal/obs"
)

func main() {
	platform := flag.String("platform", "visionfive2", "hardware profile")
	fw := flag.String("firmware", "gosbi", "vendor firmware image")
	native := flag.Bool("native", false, "run natively (no monitor)")
	noOffload := flag.Bool("no-offload", false, "disable fast-path offloading")
	policy := flag.String("policy", "sandbox", "isolation policy")
	harts := flag.Int("harts", 1, "core count")
	maxSteps := flag.Uint64("max-steps", 0, "step budget (0 = default)")
	traceOut := flag.String("trace-out", "", "write Chrome trace_event JSON to this file")
	metricsOut := flag.String("metrics-out", "", "write a metrics snapshot (JSON) to this file")
	metricsDump := flag.Bool("metrics", false, "print a metrics dump on exit")
	flag.Parse()

	var pol govfm.Policy
	switch *policy {
	case "none":
	case "sandbox":
		pol = govfm.SandboxPolicy()
	case "keystone":
		pol = govfm.KeystonePolicy()
	case "ace":
		pol = govfm.ACEPolicy()
	default:
		fmt.Fprintf(os.Stderr, "miralis: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	var ob *obs.Observer
	if *traceOut != "" || *metricsOut != "" || *metricsDump {
		ob = obs.New(obs.Options{})
	}

	sys, err := govfm.New(govfm.Config{
		Platform:   govfm.Platform(*platform),
		Firmware:   govfm.FirmwareKind(*fw),
		Harts:      *harts,
		Virtualize: !*native,
		Offload:    !*noOffload,
		Policy:     pol,
		Obs:        ob,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "miralis: %v\n", err)
		os.Exit(1)
	}

	halted, reason := sys.Run(*maxSteps)
	fmt.Printf("console:\n%s\n", indent(sys.Console()))
	fmt.Printf("halted: %v (%s)\n", halted, reason)
	fmt.Printf("cycles: %d\n", sys.Cycles())
	if !*native {
		st := sys.Stats()
		fmt.Printf("monitor: emulations=%d world-switches=%d fast-path=%d "+
			"fw-traps=%d os-traps=%d virt-interrupts=%d\n",
			st.Emulations, st.WorldSwitches, st.FastPathHits,
			st.FirmwareTraps, st.OSTraps, st.VirtInterrupts)
	}
	if ob != nil {
		if *metricsDump {
			fmt.Printf("metrics:\n%s", ob.Metrics.Dump())
		}
		if *metricsOut != "" {
			if err := ob.WriteMetricsFile(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "miralis: %v\n", err)
			}
		}
		if *traceOut != "" {
			if err := ob.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "miralis: %v\n", err)
			}
		}
	}
	if !halted || reason != "guest-exit-pass" {
		os.Exit(1)
	}
}

func indent(s string) string {
	out := "  "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "  "
		}
	}
	return out
}
