// Command chaos runs the fault-injection campaign: seeded, deterministic
// faults (bit flips, spurious/lost interrupts, rogue-firmware behaviors,
// MMIO errors) injected into monitored systems across every firmware ×
// policy × platform combination, asserting the monitor's crash containment
// contract — after every fault the guest resumes forward progress, or the
// machine stops with a structured MonitorFault on record.
//
// Usage:
//
//	go run ./cmd/chaos -smoke              # fixed-seed CI gate (~2s)
//	go run ./cmd/chaos -faults 50 -seed 7  # longer campaign, chosen seed
//	go run ./cmd/chaos -profile vf2        # one platform only
//	go run ./cmd/chaos -smoke -metrics-out chaos.json  # detection metrics
//
// With -tee the injector draws only from the TEE fault deck — forged
// confidential-compute lifecycle hypercalls and probes at the Dorami
// monitor wall — and after every fault the campaign additionally asserts
// the confidential-compute invariants: the locked-PMP wall holds on every
// hart, the ACE lifecycle FSM is structurally consistent, and the
// monitor's protected state fingerprint never changes:
//
//	go run ./cmd/chaos -tee -smoke          # TEE CI gate, all three policies
//	go run ./cmd/chaos -tee -faults 50      # longer TEE campaign
//
// With -fleet the campaign attacks the vfmd control plane itself instead
// of a machine: worker panics, stuck/slow jobs, dropped and duplicated
// requests, mid-job machine kills — asserting the fleet's supervision
// invariants (service never crashes, every job terminal, no lock leaked,
// quarantined machines respawned within cap):
//
//	go run ./cmd/chaos -fleet -smoke                        # >=120-fault CI gate
//	go run ./cmd/chaos -fleet -faults 500 -seed 9 -v        # longer, narrated
//	go run ./cmd/chaos -fleet -smoke -fleet-report out.json # full report JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"govfm/internal/inject"
	"govfm/internal/obs"
	"govfm/internal/vfmd"
)

var profileAlias = map[string][]string{
	"vf2":  {"visionfive2"},
	"p550": {"p550"},
	"all":  {"visionfive2", "p550"},
}

func main() { os.Exit(run()) }

func run() int {
	var (
		seed    = flag.Int64("seed", 1, "campaign seed")
		faults  = flag.Int("faults", 12, "faults injected per combination")
		smoke   = flag.Bool("smoke", false, "fixed-seed smoke campaign: every firmware x policy x platform, used as a CI gate")
		profile = flag.String("profile", "all", "platform profile: vf2, p550, or all")
		budget  = flag.Uint64("budget", 0, "watchdog cycle budget (0 = default)")
		tee     = flag.Bool("tee", false, "restrict injection to the TEE fault deck and assert the confidential-compute invariants (wall, ACE FSM, monitor-state fingerprint) after every fault")

		metricsOut  = flag.String("metrics-out", "", "write campaign detection metrics (JSON) to this file")
		metricsDump = flag.Bool("metrics", false, "print campaign detection metrics on exit")
		traceOut    = flag.String("trace-out", "", "write injection instants as Chrome trace_event JSON to this file")
		server      = flag.String("server", "", "run the campaign through a vfmd fleet server at this base URL (e.g. http://127.0.0.1:9400) instead of in-process; combo rebuilds spawn from shared post-warmup snapshots")

		fleet       = flag.Bool("fleet", false, "attack the vfmd control plane (fleet chaos) instead of a machine")
		fleetReport = flag.String("fleet-report", "", "write the fleet chaos report (JSON) to this file")
		verbose     = flag.Bool("v", false, "narrate each injected fault")
	)
	flag.Parse()

	if *fleet {
		return runFleetChaos(*seed, *faults, *smoke, *verbose, *fleetReport)
	}

	profiles, ok := profileAlias[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "chaos: unknown profile %q (want vf2, p550, or all)\n", *profile)
		return 2
	}
	if *smoke {
		*seed = 1
		*faults = 12
		profiles = profileAlias["all"]
	}

	if *server != "" {
		return runServer(*server, profiles, *seed, *faults)
	}

	var ob *obs.Observer
	if *metricsOut != "" || *metricsDump || *traceOut != "" {
		ob = obs.New(obs.Options{})
	}

	start := time.Now()
	rep, err := inject.RunCampaign(inject.CampaignConfig{
		Seed:           *seed,
		Platforms:      profiles,
		FaultsPerCombo: *faults,
		WatchdogBudget: *budget,
		Obs:            ob,
		TEE:            *tee,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 2
	}
	fmt.Print(rep.Format())
	if ob != nil {
		// Surface the campaign's detection metrics into the registry: the
		// Report already aggregates across every combo and rebuild.
		ob.Metrics.Collect(func(emit func(name string, value uint64)) {
			emit("chaos.injected", uint64(rep.TotalInjected))
			emit("chaos.detected", uint64(rep.TotalReported))
			emit("chaos.contained", uint64(rep.TotalContained))
			emit("chaos.failures", uint64(rep.TotalFailures))
			for k := inject.Kind(0); int(k) < inject.NumKinds; k++ {
				if n := rep.ByKind[k]; n > 0 {
					emit("chaos.inject."+k.String(), uint64(n))
				}
			}
		})
		if *metricsDump {
			fmt.Printf("metrics:\n%s", ob.Metrics.Dump())
		}
		if *metricsOut != "" {
			if err := ob.WriteMetricsFile(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			}
		}
		if *traceOut != "" {
			if err := ob.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			}
		}
	}
	fmt.Printf("campaign: %d combos in %.1fs\n", len(rep.Results), time.Since(start).Seconds())
	for _, r := range rep.Results {
		for _, f := range r.Failures {
			fmt.Printf("FAILURE %s/%s/%s: %s\n", r.Platform, r.Firmware, r.Policy, f)
		}
		if !r.HashIntact {
			fmt.Printf("FAILURE %s/%s/%s: sandbox integrity hash changed\n",
				r.Platform, r.Firmware, r.Policy)
		}
	}
	for _, r := range rep.Results {
		if len(r.Failures) > 0 || !r.HashIntact {
			return 1
		}
	}
	return 0
}

// runFleetChaos drives the control-plane chaos campaign: an in-process
// vfmd service under seeded fault fire, with the supervision invariants
// checked at the end. The smoke configuration (>=120 faults, fixed seed)
// is the tier-2 CI gate.
func runFleetChaos(seed int64, faults int, smoke, verbose bool, reportPath string) int {
	cfg := vfmd.FleetChaosConfig{Seed: seed, Faults: faults}
	if smoke {
		cfg.Seed = 1
		cfg.Faults = 120
	}
	if verbose {
		cfg.Verbose = func(s string) { fmt.Println(s) }
	}
	t0 := time.Now()
	rep, err := vfmd.RunFleetChaos(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: fleet: %v\n", err)
		return 2
	}
	if reportPath != "" {
		b, _ := json.MarshalIndent(rep, "", "  ")
		if werr := os.WriteFile(reportPath, append(b, '\n'), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "chaos: fleet report: %v\n", werr)
		}
	}
	fmt.Printf("fleet chaos: %d faults in %.1fs (seed %d)\n", rep.Faults, time.Since(t0).Seconds(), cfg.Seed)
	for kind, n := range rep.PerKind {
		fmt.Printf("  %-13s %d\n", kind, n)
	}
	fmt.Printf("jobs: %d accepted, %d terminal; quarantines: %d (%d respawned, %d replaced)\n",
		rep.Jobs, rep.Terminal, rep.Quarantines, rep.Respawns, rep.Replacements)
	fmt.Printf("transport: %d responses dropped, %d requests duplicated; client: %d retries, %d dropped calls\n",
		rep.DroppedResps, rep.DupedReqs, rep.ClientRetries, rep.ClientDropped)
	if len(rep.Failures) > 0 {
		for _, f := range rep.Failures {
			fmt.Printf("FAILURE: %s\n", f)
		}
		return 1
	}
	fmt.Println("all supervision invariants held: service alive, every job terminal, no lock leaked, respawns within cap")
	return 0
}

// runServer runs the campaign through a vfmd fleet server: the server
// boots each combo once and spawns every rebuild from the post-warmup
// COW snapshot instead of re-simulating the boot.
func runServer(base string, profiles []string, seed int64, faults int) int {
	c := vfmd.NewClient(base)
	t0 := time.Now()
	j, err := c.Campaign(vfmd.CampaignSpec{
		Kind:           "chaos",
		Profiles:       profiles,
		Seed:           seed,
		FaultsPerCombo: faults,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: server: %v\n", err)
		return 2
	}
	fmt.Printf("campaign job %s queued on %s\n", j.ID, base)
	j, err = c.WaitJob(j.ID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: server: %v\n", err)
		return 2
	}
	res, err := vfmd.CampaignResultOf(j)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: server: %v\n", err)
		return 2
	}
	for _, line := range res.Lines {
		fmt.Println(line)
	}
	fmt.Printf("server campaign (chaos): %d shard(s), %d faults injected, %d failure(s) in %.1fs\n",
		res.Shards, res.Cases, res.Findings, time.Since(t0).Seconds())
	if res.Findings > 0 {
		return 1
	}
	return 0
}
