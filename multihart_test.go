package govfm_test

import (
	"fmt"
	"strings"
	"testing"

	govfm "govfm"
)

// TestMultiHartKernelBoot boots the default kernel on multi-hart machines
// through the monitored gosbi firmware, across both evaluation platforms,
// hart counts, and both execution schedulers. The multi-hart boot kernel
// exercises the HSM hart-start handshake, an IPI round trip, and a remote
// fence before the SRST shutdown, so a pass means the cross-hart paths
// (MSIP delivery, hart-state transitions, fence forwarding) work under
// quantum-parallel execution exactly as under the sequential round-robin.
func TestMultiHartKernelBoot(t *testing.T) {
	for _, platform := range []govfm.Platform{govfm.VisionFive2, govfm.PremierP550} {
		for _, harts := range []int{2, 4} {
			for _, sched := range []string{"seq", "par"} {
				name := fmt.Sprintf("%s/harts=%d/%s", platform, harts, sched)
				t.Run(name, func(t *testing.T) {
					sys, err := govfm.New(govfm.Config{
						Platform:   platform,
						Harts:      harts,
						Virtualize: true,
						Offload:    true,
						Sched:      sched,
					})
					if err != nil {
						t.Fatal(err)
					}
					halted, reason := sys.Run(0)
					if !halted || reason != "guest-exit-pass" {
						t.Fatalf("halted=%v reason=%q console=%q",
							halted, reason, sys.Console())
					}
					out := sys.Console()
					if !strings.Contains(out, "boot") || !strings.Contains(out, "ok") {
						t.Errorf("console missing boot markers: %q", out)
					}
				})
			}
		}
	}
}
