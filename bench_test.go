// Top-level benchmarks: one per table and figure of the paper's evaluation
// (§8). Each benchmark runs the corresponding experiment on the simulated
// platforms and reports the paper's metric through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. The per-figure sweeps use mildly scaled
// workloads to keep the run time tractable; cmd/benchall runs them at full
// size.
package govfm_test

import (
	"math/rand"
	"testing"

	"govfm/internal/bench"
	"govfm/internal/hart"
	"govfm/internal/verif"
)

// scaled returns a copy of the spec with the iteration count divided.
func scaled(w *bench.WorkloadSpec, div int) *bench.WorkloadSpec {
	c := *w
	c.Iterations /= div
	if c.Iterations < 20 {
		c.Iterations = 20
	}
	if c.Samples > c.Iterations {
		c.Samples = c.Iterations
	}
	return &c
}

// BenchmarkTable4Operations measures the cost of instruction emulation and
// a world-switch round trip (paper: VF2 483/2704, P550 271/4098 cycles).
func BenchmarkTable4Operations(b *testing.B) {
	for name, mk := range map[string]func() *hart.Config{
		"visionfive2": hart.VisionFive2, "p550": hart.PremierP550,
	} {
		b.Run(name, func(b *testing.B) {
			var r *bench.Table4Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.Table4(mk)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.EmulationCycles, "emulation-cycles")
			b.ReportMetric(r.WorldSwitchCycles, "worldswitch-cycles")
		})
	}
}

// BenchmarkTable5HotOps measures the time-read and IPI cost across the
// three configurations (paper: 288/208/7260 ns and 3.96/3.65/39.8 µs).
func BenchmarkTable5HotOps(b *testing.B) {
	var r *bench.Table5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.Table5(hart.VisionFive2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ReadTime[bench.Native], "readtime-native-ns")
	b.ReportMetric(r.ReadTime[bench.Miralis], "readtime-miralis-ns")
	b.ReportMetric(r.ReadTime[bench.MiralisNoOffload], "readtime-nooffload-ns")
	b.ReportMetric(r.IPI[bench.Native], "ipi-native-ns")
	b.ReportMetric(r.IPI[bench.Miralis], "ipi-miralis-ns")
	b.ReportMetric(r.IPI[bench.MiralisNoOffload], "ipi-nooffload-ns")
}

// BenchmarkFig3TrapDistribution regenerates the boot trap-cause profile
// (paper: five causes = 99.98% of traps; 1.17 world-switches/s offloaded).
func BenchmarkFig3TrapDistribution(b *testing.B) {
	var r *bench.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.Fig3(hart.VisionFive2, 10_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.TopShare, "top5-share-%")
	b.ReportMetric(r.NativeTrapRate, "native-traps/s")
	b.ReportMetric(r.WorldSwitchRate, "offload-switches/s")
}

// BenchmarkFig10CoreMarkPro regenerates the CPU-bound relative scores
// (paper: miralis ≈ native, no-offload ≈ 1.9% overhead).
func BenchmarkFig10CoreMarkPro(b *testing.B) {
	r := &bench.Runner{NewConfig: hart.VisionFive2, Sandbox: true}
	var mirSum, nooSum float64
	specs := bench.CoreMarkPro()
	for i := 0; i < b.N; i++ {
		mirSum, nooSum = 0, 0
		for _, w := range specs {
			all, err := r.RunAll(scaled(w, 3))
			if err != nil {
				b.Fatal(err)
			}
			mirSum += bench.RelativeScore(all[bench.Native], all[bench.Miralis])
			nooSum += bench.RelativeScore(all[bench.Native], all[bench.MiralisNoOffload])
		}
	}
	b.ReportMetric(mirSum/float64(len(specs)), "miralis-relative")
	b.ReportMetric(nooSum/float64(len(specs)), "nooffload-relative")
}

// BenchmarkFig11IOzone regenerates the disk-throughput comparison
// (paper: no-offload ≈ 10.6% down).
func BenchmarkFig11IOzone(b *testing.B) {
	var res *bench.Fig11Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.Fig11(hart.VisionFive2)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, op := range []string{"read", "write"} {
		b.ReportMetric(res.Throughput[op][bench.Native], op+"-native-MB/s")
		b.ReportMetric(res.Throughput[op][bench.Miralis], op+"-miralis-MB/s")
		b.ReportMetric(res.Throughput[op][bench.MiralisNoOffload], op+"-nooffload-MB/s")
	}
}

// BenchmarkFig12MemcachedLatency regenerates the latency distribution
// (paper: miralis median ≤ native, no-offload ≈ 2x).
func BenchmarkFig12MemcachedLatency(b *testing.B) {
	var res *bench.Fig12Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.Fig12(hart.VisionFive2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PercentilesNs[bench.Native][50], "p50-native-ns")
	b.ReportMetric(res.PercentilesNs[bench.Miralis][50], "p50-miralis-ns")
	b.ReportMetric(res.PercentilesNs[bench.MiralisNoOffload][50], "p50-nooffload-ns")
	b.ReportMetric(res.PercentilesNs[bench.MiralisNoOffload][99], "p99-nooffload-ns")
}

// BenchmarkFig13Applications regenerates the application comparison
// (paper: miralis up to +7.6% on network loads; no-offload up to -72%).
func BenchmarkFig13Applications(b *testing.B) {
	r := &bench.Runner{NewConfig: hart.VisionFive2, Sandbox: true}
	results := map[string]map[bench.Mode]*bench.Metrics{}
	for i := 0; i < b.N; i++ {
		for _, w := range bench.Applications() {
			all, err := r.RunAll(scaled(w, 4))
			if err != nil {
				b.Fatal(err)
			}
			results[w.Name] = all
		}
	}
	for name, all := range results {
		b.ReportMetric(bench.RelativeScore(all[bench.Native], all[bench.Miralis]),
			name+"-miralis")
		b.ReportMetric(bench.RelativeScore(all[bench.Native], all[bench.MiralisNoOffload]),
			name+"-nooffload")
	}
}

// BenchmarkFig14KeystoneRV8 regenerates the enclave overhead figure
// (paper: ≈1% average).
func BenchmarkFig14KeystoneRV8(b *testing.B) {
	var res *bench.Fig14Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.Fig14(hart.VisionFive2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Average, "enclave-relative-avg")
}

// BenchmarkBootTime regenerates the boot-time comparison
// (paper: +1% with offload, +29% without).
func BenchmarkBootTime(b *testing.B) {
	var res *bench.BootTimeResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.BootTime(hart.VisionFive2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(res.Seconds[bench.Miralis]/res.Seconds[bench.Native]-1),
		"miralis-overhead-%")
	b.ReportMetric(100*(res.Seconds[bench.MiralisNoOffload]/res.Seconds[bench.Native]-1),
		"nooffload-overhead-%")
}

// BenchmarkRVA23Ablation regenerates the §3.4 prediction: hardware
// time CSR + Sstc make offloading unnecessary.
func BenchmarkRVA23Ablation(b *testing.B) {
	var res *bench.RVA23Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RVA23Ablation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NoOffloadRelative["visionfive2"], "vf2-nooffload-relative")
	b.ReportMetric(res.NoOffloadRelative["rva23"], "rva23-nooffload-relative")
	b.ReportMetric(float64(res.NoOffloadSwitches["visionfive2"]), "vf2-switches")
	b.ReportMetric(float64(res.NoOffloadSwitches["rva23"]), "rva23-switches")
}

// BenchmarkTable2Verification times the differential-verification suites
// (the analog of the paper's Kani model-checking times in Table 2) by
// delegating to `go test ./internal/verif`; here we report the simulator-
// level throughput that bounds them.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := &bench.WorkloadSpec{
		Name: "throughput", Iterations: 100, ComputeN: 2000, MemN: 50,
	}
	r := &bench.Runner{NewConfig: hart.VisionFive2}
	var instret uint64
	for i := 0; i < b.N; i++ {
		m, err := r.Run(w, bench.Native)
		if err != nil {
			b.Fatal(err)
		}
		instret = m.Instret
	}
	b.ReportMetric(float64(instret), "guest-instructions")
}

// BenchmarkTable2Verification times the differential-verification suites —
// the analog of the paper's Table 2 Kani model-checking times (mret 68s,
// CSR write 9min, end-to-end 118min on their setup; exhaustive enumeration
// against the executable reference model is orders of magnitude cheaper).
func BenchmarkTable2Verification(b *testing.B) {
	mkH := func(b *testing.B) *verif.Harness {
		h, err := verif.NewHarness(hart.VisionFive2())
		if err != nil {
			b.Fatal(err)
		}
		return h
	}
	b.Run("mret", func(b *testing.B) {
		h := mkH(b)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < b.N; i++ {
			s := h.GenState(rng)
			if err := h.CheckEmulation(s, 0x30200073, 0x1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sret", func(b *testing.B) {
		h := mkH(b)
		rng := rand.New(rand.NewSource(43))
		for i := 0; i < b.N; i++ {
			s := h.GenState(rng)
			if err := h.CheckEmulation(s, 0x10200073, 0x1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wfi", func(b *testing.B) {
		h := mkH(b)
		rng := rand.New(rand.NewSource(44))
		for i := 0; i < b.N; i++ {
			s := h.GenState(rng)
			if err := h.CheckEmulation(s, 0x10500073, 0x1000); err != nil {
				b.Fatal(err)
			}
			h.Machine.Harts[0].Waiting = false
		}
	})
	b.Run("csr-write", func(b *testing.B) {
		h := mkH(b)
		rng := rand.New(rand.NewSource(45))
		for i := 0; i < b.N; i++ {
			s := h.GenState(rng)
			// csrrw x5, mstatus, x6
			raw := uint32(0x300)<<20 | 6<<15 | 1<<12 | 5<<7 | 0x73
			if err := h.CheckEmulation(s, raw, 0x1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("virtual-interrupt", func(b *testing.B) {
		h := mkH(b)
		rng := rand.New(rand.NewSource(46))
		for i := 0; i < b.N; i++ {
			s := h.GenState(rng)
			if err := h.CheckInterruptInjection(s, 0x1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decoder", func(b *testing.B) {
		h := mkH(b)
		rng := rand.New(rand.NewSource(47))
		for i := 0; i < b.N; i++ {
			s := h.GenState(rng)
			if err := h.CheckEmulation(s, rng.Uint32(), 0x1000); err != nil {
				b.Fatal(err)
			}
		}
	})
}
