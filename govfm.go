// Package govfm is a Go reproduction of "The Design and Implementation of
// a Virtual Firmware Monitor" (SOSP 2025): a complete virtual firmware
// monitor in the style of Miralis, together with the full substrate it
// needs — a cycle-accounted RV64 machine simulator with M/S/U privilege
// modes, PMP, Sv39, CLINT/PLIC/UART devices, a programmatic assembler,
// synthetic vendor firmware (an OpenSBI-like, a RustSBI-like, and a
// Zephyr-like RTOS), synthetic guest kernels, three isolation policies
// (firmware sandbox, Keystone enclaves, ACE confidential VMs), an
// executable reference model of the privileged specification, and a
// differential verification harness for the paper's faithful-emulation
// and faithful-execution criteria.
//
// The package is a facade: it assembles the pieces into a runnable System.
//
//	sys, err := govfm.New(govfm.Config{
//		Platform:   govfm.VisionFive2,
//		Virtualize: true,
//		Offload:    true,
//		Policy:     govfm.SandboxPolicy(),
//	})
//	sys.Run(0)
//	fmt.Print(sys.Console())
//
// For direct access to the subsystems, see the internal packages:
// internal/core (the monitor), internal/hart (the simulator),
// internal/firmware, internal/kernel, internal/policy/*, internal/verif,
// and internal/bench (the evaluation harness).
package govfm

import (
	"fmt"

	"govfm/internal/core"
	"govfm/internal/firmware"
	"govfm/internal/hart"
	"govfm/internal/kernel"
	"govfm/internal/obs"
	"govfm/internal/policy/ace"
	"govfm/internal/policy/keystone"
	"govfm/internal/policy/sandbox"
)

// Platform selects a hardware profile.
type Platform string

// The built-in platform profiles (paper Table 3 plus the forward-looking
// RVA23 profile of §3.4).
const (
	VisionFive2 Platform = "visionfive2"
	PremierP550 Platform = "p550"
	RVA23       Platform = "rva23"
)

// FirmwareKind selects which vendor firmware image to run.
type FirmwareKind string

// The built-in firmware images (paper §8.2).
const (
	Gosbi  FirmwareKind = "gosbi"  // OpenSBI-like full SBI implementation
	Minsbi FirmwareKind = "minsbi" // RustSBI-like minimal implementation
	RTOS   FirmwareKind = "rtos"   // Zephyr-like M-mode RTOS (no OS payload)
)

// Memory layout constants, re-exported for kernel/image authors.
const (
	FirmwareBase = core.FirmwareBase
	OSBase       = core.OSBase
	DramBase     = hart.DramBase
)

// Policy is an isolation policy module (paper §5).
type Policy = core.Policy

// SandboxPolicy returns the firmware sandbox policy (§5.2) with the
// standard memory layout.
func SandboxPolicy() Policy { return sandbox.New(sandbox.Options{}) }

// KeystonePolicy returns the Keystone enclave policy (§5.3).
func KeystonePolicy() Policy { return keystone.New() }

// ACEPolicy returns the ACE confidential-VM policy (§5.4).
func ACEPolicy() Policy { return ace.New() }

// Config describes a system to build.
type Config struct {
	// Platform selects the hardware profile (default VisionFive2).
	Platform Platform
	// Harts overrides the platform's core count (0 = profile default).
	Harts int

	// Firmware selects the vendor firmware (default Gosbi). FirmwareImage,
	// when non-nil, supplies an opaque binary instead (the paper's Star64
	// scenario) and takes precedence.
	Firmware      FirmwareKind
	FirmwareImage []byte

	// Kernel is the S-mode payload loaded at OSBase. Nil selects the
	// default boot kernel (ignored for the RTOS firmware, which has no OS).
	Kernel []byte

	// Virtualize runs the firmware under the monitor in virtual M-mode;
	// false is the paper's "Native" baseline.
	Virtualize bool
	// Offload enables fast-path offloading of the five hot operations
	// (§3.4); only meaningful when virtualizing.
	Offload bool
	// Policy is the isolation policy (nil = none); only meaningful when
	// virtualizing.
	Policy Policy

	// Containment enables the monitor's crash containment and recovery:
	// firmware double faults, lockups, and watchdog expiries restart the
	// virtual firmware from its boot snapshot (or divert to degraded-mode
	// SBI once the OS runs) instead of wedging the machine. Only
	// meaningful when virtualizing.
	Containment bool
	// WatchdogBudget is the per-entry firmware cycle budget the watchdog
	// enforces when Containment is on (0 disables the watchdog).
	WatchdogBudget uint64

	// Obs, when non-nil, attaches the observability layer: the machine's
	// perf counters and the monitor's dispatch/world-switch/SBI metrics
	// register with Obs.Metrics, and structured events (traps, world
	// switches, boot, faults) flow to Obs.Trace. Observability never
	// charges simulated cycles — counts are bit-identical with it on or
	// off.
	Obs *obs.Observer

	// Sched selects the execution scheduler: "seq" (default) steps harts
	// round-robin on one goroutine; "par" runs each hart on its own
	// goroutine for a quantum of simulated cycles between deterministic
	// barriers (see DESIGN.md, "Parallel hart scheduling").
	Sched string
	// Quantum is the parallel scheduler's slice length in simulated cycles
	// (0 = hart.DefaultQuantum); ignored under the sequential scheduler.
	Quantum uint64

	// VirtualizePLIC enables the experimental virtual PLIC (paper §4.3).
	VirtualizePLIC bool
	// IOPMP adds an IOPMP unit to the machine and virtualizes it (§4.3);
	// DMA masters are then checked against monitor, policy, and firmware
	// rules. Implies a 16-entry PMP file (IOPMP-era silicon).
	IOPMP bool
}

// System is a ready-to-run machine.
type System struct {
	Machine  *hart.Machine
	Monitor  *core.Monitor // nil when not virtualizing
	Platform *hart.Config
}

// New builds a system: machine, firmware, kernel, and (optionally) the
// monitor with its policy.
func New(cfg Config) (*System, error) {
	name := cfg.Platform
	if name == "" {
		name = VisionFive2
	}
	mk, ok := hart.Profiles()[string(name)]
	if !ok {
		return nil, fmt.Errorf("govfm: unknown platform %q", name)
	}
	pcfg := mk()
	if cfg.Harts > 0 {
		pcfg.Harts = cfg.Harts
	}
	if cfg.IOPMP {
		pcfg.HasIOPMP = true
		if pcfg.NumPMP < 16 {
			pcfg.NumPMP = 16
		}
	}
	m, err := hart.NewMachine(pcfg, core.DramSize)
	if err != nil {
		return nil, err
	}
	sched, err := hart.ParseSched(cfg.Sched)
	if err != nil {
		return nil, fmt.Errorf("govfm: %v", err)
	}
	m.Sched = sched
	m.Quantum = cfg.Quantum

	img := cfg.FirmwareImage
	needKernel := true
	if img == nil {
		switch cfg.Firmware {
		case "", Gosbi:
			img = firmware.BuildGosbi(core.FirmwareBase, firmware.Options{
				OSEntry: core.OSBase, Harts: pcfg.Harts, FirmwareSize: core.FirmwareSize,
			}).Bytes
		case Minsbi:
			img = firmware.BuildMinsbi(core.FirmwareBase, firmware.Options{
				OSEntry: core.OSBase, FirmwareSize: core.FirmwareSize,
			}).Bytes
		case RTOS:
			img = firmware.BuildRTOS(core.FirmwareBase).Bytes
			needKernel = false
		default:
			return nil, fmt.Errorf("govfm: unknown firmware %q", cfg.Firmware)
		}
	}
	if err := m.LoadImage(core.FirmwareBase, img); err != nil {
		return nil, err
	}
	if needKernel {
		kern := cfg.Kernel
		if kern == nil {
			kern = kernel.BuildBoot(core.OSBase, kernel.BootOptions{
				Harts: pcfg.Harts, TimeReads: 10, TimerSets: 1, Misaligned: 3,
				Paging: true,
			})
		}
		if err := m.LoadImage(core.OSBase, kern); err != nil {
			return nil, err
		}
	}

	sys := &System{Machine: m, Platform: pcfg}
	if cfg.Obs != nil {
		m.AttachObs(cfg.Obs)
	}
	if cfg.Virtualize {
		mon, err := core.Attach(m, core.Options{
			Policy:          cfg.Policy,
			Offload:         cfg.Offload,
			FirmwareEntry:   core.FirmwareBase,
			VirtualizePLIC:  cfg.VirtualizePLIC,
			VirtualizeIOPMP: cfg.IOPMP,
			Containment:     cfg.Containment,
			WatchdogBudget:  cfg.WatchdogBudget,
			Obs:             cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		sys.Monitor = mon
		mon.Boot()
	} else {
		m.Reset(core.FirmwareBase)
	}
	return sys, nil
}

// Run executes the system until it halts or maxSteps machine steps elapse
// (0 = a generous default). It returns whether the machine halted and the
// halt reason ("guest-exit-pass" is the clean shutdown).
func (s *System) Run(maxSteps uint64) (bool, string) {
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	s.Machine.Run(maxSteps)
	return s.Machine.Halted()
}

// Console returns everything the guest wrote to the UART.
func (s *System) Console() string { return s.Machine.Uart.Output() }

// Stats returns the monitor's aggregate counters (zero when native).
func (s *System) Stats() core.Stats {
	if s.Monitor == nil {
		return core.Stats{}
	}
	return s.Monitor.TotalStats()
}

// Cycles returns hart 0's cycle count.
func (s *System) Cycles() uint64 { return s.Machine.Harts[0].Cycles }

// BootKernel builds the default boot kernel with the given operation
// counts, for callers who want a custom payload.
func BootKernel(harts, timeReads, timerSets, misaligned int) []byte {
	return kernel.BuildBoot(core.OSBase, kernel.BootOptions{
		Harts: harts, TimeReads: timeReads, TimerSets: timerSets,
		Misaligned: misaligned,
	})
}
